// Package jni implements the Java Native Interface surface of the simulated
// runtime: the raw-pointer Get/Release interfaces of the paper's Table 1,
// the native-method trampolines that flip MTE checking at thread level
// (§3.3/§4.3), and a CheckJNI-style validation layer.
//
// Native "code" in this reproduction is a Go function receiving an *Env. It
// touches Java heap memory exclusively through the Env's Load/Store/Copy
// helpers, which perform checked accesses against the simulated memory —
// the same unrestricted raw-pointer access model (pointer arithmetic
// included) that makes real JNI dangerous.
package jni

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mte4jni/internal/exec"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// Env is the per-thread JNI environment, the `JNIEnv*` of the simulation.
type Env struct {
	thread  *vm.Thread
	vm      *vm.VM
	checker Checker

	// checkJNI enables the validation layer (release-pointer matching,
	// double-release and type checks). ART always validates when any
	// protection debugging is on; we keep it switchable for benchmarks.
	checkJNI bool

	// mteThreadControl is true when the trampolines must write TCO on
	// native entry/exit — the paper's thread-level enabling. It is false
	// both for non-MTE schemes and for the naive process-level design.
	mteThreadControl bool

	// mu guards the acquisition ledger.
	mu       sync.Mutex
	acquired []*acquisition

	// tracer, when set, receives TraceEvents (see trace.go).
	tracer atomic.Pointer[Tracer]

	// execCtx is the execution context of the request currently driving this
	// env (nil = detached). It rides on the Env the way ART threads its
	// per-thread state through JNIEnv: native bodies and workload kernels
	// reach it via Exec() without every call signature changing.
	execCtx *exec.Context

	// elide is the proof-carrying elision gate (see elide.go); like execCtx
	// it is owned by the lease's goroutine. elideInvalidations counts proof
	// invalidations monotonically across runs.
	elide              elisionState
	elideInvalidations uint64
}

// acquisition records one outstanding Get so the matching Release can be
// validated and the object unpinned.
type acquisition struct {
	// obj is the object whose payload was handed to the checker (for
	// GetStringUTFChars this is the temporary Modified-UTF-8 buffer).
	obj   *vm.Object
	iface string
	ptr   mte.Ptr
	begin mte.Addr
	end   mte.Addr
	// match is the object the Release interface will be called with; equal
	// to obj except for the UTFChars path, where it is the source string.
	match *vm.Object
	// freeObj marks obj as a JNI-owned temporary to destroy on release.
	freeObj bool
}

// NewEnv creates the JNI environment for a thread under the given
// protection scheme. checkJNI enables CheckJNI-style validation.
func NewEnv(t *vm.Thread, checker Checker, checkJNI bool) *Env {
	v := t.VM()
	return &Env{
		thread:           t,
		vm:               v,
		checker:          checker,
		checkJNI:         checkJNI,
		mteThreadControl: v.MTEEnabled() && !v.Options().ProcessLevelMTE,
	}
}

// Thread returns the owning thread.
func (e *Env) Thread() *vm.Thread { return e.thread }

// VM returns the runtime.
func (e *Env) VM() *vm.VM { return e.vm }

// Checker returns the active protection scheme.
func (e *Env) Checker() Checker { return e.checker }

// Scheme returns the protection scheme name for reports.
func (e *Env) Scheme() string { return e.checker.Name() }

// BindExec attaches the execution context of the request about to run on
// this env (nil detaches). The env is owned by a single goroutine per lease,
// so no synchronization is needed; the pool binds before a run and detaches
// after.
func (e *Env) BindExec(ec *exec.Context) { e.execCtx = ec }

// Exec returns the bound execution context (may be nil). All exec.Context
// methods are nil-receiver safe, so callers can use the result directly.
func (e *Env) Exec() *exec.Context { return e.execCtx }

// OutstandingAcquisitions reports how many Gets have not been released —
// CheckJNI flags a nonzero count at thread detach as a leak.
func (e *Env) OutstandingAcquisitions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.acquired)
}

// recordAcquisition pins the payload object and logs the handout.
func (e *Env) recordAcquisition(a *acquisition) {
	a.obj.Pin()
	if a.match == nil {
		a.match = a.obj
	}
	e.mu.Lock()
	e.acquired = append(e.acquired, a)
	e.mu.Unlock()
}

// takeAcquisition validates and removes the ledger entry matching a
// Release call. With CheckJNI off it still consumes an entry (so pins stay
// balanced) but skips the strict match error.
func (e *Env) takeAcquisition(match *vm.Object, iface string, p mte.Ptr) (*acquisition, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, a := range e.acquired {
		if a.match == match && a.ptr == p {
			e.acquired = append(e.acquired[:i], e.acquired[i+1:]...)
			return a, nil
		}
	}
	if e.checkJNI {
		return nil, fmt.Errorf("jni: CheckJNI: %s called with pointer %v that was not returned for %s (double release or wrong pointer?)",
			iface, p, match)
	}
	// Without CheckJNI, mimic ART's lenient fallback: match on object only.
	for i, a := range e.acquired {
		if a.match == match {
			e.acquired = append(e.acquired[:i], e.acquired[i+1:]...)
			return a, nil
		}
	}
	return nil, fmt.Errorf("jni: release of %s with no outstanding acquisition", match)
}

// --- Native memory access helpers -----------------------------------------
//
// These are the simulated load/store instructions of native code. On a
// synchronous tag-check fault they panic with the *mte.Fault, modelling the
// SIGSEGV that kills the native frame; the trampoline (CallNative) recovers
// it and turns it into the crash report. Faults are enriched with the Go
// call site of the access so reports pinpoint the faulting line, like the
// paper's Figure 4b.

// fault enriches and raises a synchronous fault.
func (e *Env) fault(f *mte.Fault) {
	if _, file, line, ok := runtime.Caller(2); ok {
		f.PC = fmt.Sprintf("%s (%s:%d)", f.PC, trimPath(file), line)
		if len(f.Backtrace) > 0 {
			f.Backtrace[0] = f.PC
		} else {
			f.Backtrace = []string{f.PC}
		}
	}
	panic(f)
}

// trimPath shortens an absolute Go file path to its last two elements.
func trimPath(p string) string {
	slash := 0
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			slash++
			if slash == 2 {
				return p[i+1:]
			}
		}
	}
	return p
}

// traceAccess emits a TraceAccess event ahead of the access itself, so a
// faulting load or store still appears in the trace (the lint needs to see
// the access that killed the process, just like the crash report does).
func (e *Env) traceAccess(iface string, p mte.Ptr, size int, write bool) {
	if e.tracing() {
		e.trace(TraceEvent{Kind: TraceAccess, Iface: iface, Ptr: p, Size: size, Write: write})
	}
}

// LoadInt performs a checked 32-bit load through a raw pointer.
func (e *Env) LoadInt(p mte.Ptr) int32 {
	e.traceAccess("LoadInt", p, 4, false)
	var v uint32
	var f *mte.Fault
	if e.elided() {
		v, f = e.vm.Space.Load32Unguarded(e.thread.Ctx(), p)
	} else {
		v, f = e.vm.Space.Load32(e.thread.Ctx(), p)
	}
	if f != nil {
		e.fault(f)
	}
	return int32(v)
}

// StoreInt performs a checked 32-bit store through a raw pointer.
func (e *Env) StoreInt(p mte.Ptr, v int32) {
	e.traceAccess("StoreInt", p, 4, true)
	var f *mte.Fault
	if e.elided() {
		f = e.vm.Space.Store32Unguarded(e.thread.Ctx(), p, uint32(v))
	} else {
		f = e.vm.Space.Store32(e.thread.Ctx(), p, uint32(v))
	}
	if f != nil {
		e.fault(f)
	}
}

// LoadByte performs a checked 8-bit load.
func (e *Env) LoadByte(p mte.Ptr) byte {
	e.traceAccess("LoadByte", p, 1, false)
	var v uint8
	var f *mte.Fault
	if e.elided() {
		v, f = e.vm.Space.Load8Unguarded(e.thread.Ctx(), p)
	} else {
		v, f = e.vm.Space.Load8(e.thread.Ctx(), p)
	}
	if f != nil {
		e.fault(f)
	}
	return v
}

// StoreByte performs a checked 8-bit store.
func (e *Env) StoreByte(p mte.Ptr, v byte) {
	e.traceAccess("StoreByte", p, 1, true)
	var f *mte.Fault
	if e.elided() {
		f = e.vm.Space.Store8Unguarded(e.thread.Ctx(), p, v)
	} else {
		f = e.vm.Space.Store8(e.thread.Ctx(), p, v)
	}
	if f != nil {
		e.fault(f)
	}
}

// LoadChar performs a checked 16-bit load (Java char / UTF-16 unit).
func (e *Env) LoadChar(p mte.Ptr) uint16 {
	e.traceAccess("LoadChar", p, 2, false)
	var v uint16
	var f *mte.Fault
	if e.elided() {
		v, f = e.vm.Space.Load16Unguarded(e.thread.Ctx(), p)
	} else {
		v, f = e.vm.Space.Load16(e.thread.Ctx(), p)
	}
	if f != nil {
		e.fault(f)
	}
	return v
}

// StoreChar performs a checked 16-bit store.
func (e *Env) StoreChar(p mte.Ptr, v uint16) {
	e.traceAccess("StoreChar", p, 2, true)
	var f *mte.Fault
	if e.elided() {
		f = e.vm.Space.Store16Unguarded(e.thread.Ctx(), p, v)
	} else {
		f = e.vm.Space.Store16(e.thread.Ctx(), p, v)
	}
	if f != nil {
		e.fault(f)
	}
}

// LoadLong performs a checked 64-bit load.
func (e *Env) LoadLong(p mte.Ptr) int64 {
	e.traceAccess("LoadLong", p, 8, false)
	var v uint64
	var f *mte.Fault
	if e.elided() {
		v, f = e.vm.Space.Load64Unguarded(e.thread.Ctx(), p)
	} else {
		v, f = e.vm.Space.Load64(e.thread.Ctx(), p)
	}
	if f != nil {
		e.fault(f)
	}
	return int64(v)
}

// StoreLong performs a checked 64-bit store.
func (e *Env) StoreLong(p mte.Ptr, v int64) {
	e.traceAccess("StoreLong", p, 8, true)
	var f *mte.Fault
	if e.elided() {
		f = e.vm.Space.Store64Unguarded(e.thread.Ctx(), p, uint64(v))
	} else {
		f = e.vm.Space.Store64(e.thread.Ctx(), p, uint64(v))
	}
	if f != nil {
		e.fault(f)
	}
}

// Memcpy copies n bytes between two raw Java-heap pointers with checked
// access on both sides — the native method body of the Figure 5 workload.
func (e *Env) Memcpy(dst, src mte.Ptr, n int) {
	e.traceAccess("Memcpy", src, n, false)
	e.traceAccess("Memcpy", dst, n, true)
	var f *mte.Fault
	if e.elided() {
		f = e.vm.Space.MoveUnguarded(e.thread.Ctx(), dst, src, n)
	} else {
		f = e.vm.Space.Move(e.thread.Ctx(), dst, src, n)
	}
	if f != nil {
		e.fault(f)
	}
}

// CopyToNative reads len(dst) bytes from simulated memory at src into a
// native (Go) buffer, checked.
func (e *Env) CopyToNative(dst []byte, src mte.Ptr) {
	e.traceAccess("CopyToNative", src, len(dst), false)
	var f *mte.Fault
	if e.elided() {
		f = e.vm.Space.CopyOutUnguarded(e.thread.Ctx(), src, dst)
	} else {
		f = e.vm.Space.CopyOut(e.thread.Ctx(), src, dst)
	}
	if f != nil {
		e.fault(f)
	}
}

// CopyFromNative writes src into simulated memory at dst, checked.
func (e *Env) CopyFromNative(dst mte.Ptr, src []byte) {
	e.traceAccess("CopyFromNative", dst, len(src), true)
	var f *mte.Fault
	if e.elided() {
		f = e.vm.Space.CopyInUnguarded(e.thread.Ctx(), dst, src)
	} else {
		f = e.vm.Space.CopyIn(e.thread.Ctx(), dst, src)
	}
	if f != nil {
		e.fault(f)
	}
}

// Syscall simulates the native code performing a system call; in
// asynchronous MTE mode a latched tag fault is delivered here (the getuid
// frame of Figure 4c), raised like a synchronous signal.
func (e *Env) Syscall(name string) {
	if f := e.thread.Syscall(name); f != nil {
		panic(f)
	}
}
