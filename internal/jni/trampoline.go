package jni

import (
	"fmt"

	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// NativeKind classifies a native method the way ART's annotations do
// (§4.3): the kind decides which trampoline runs and therefore where the
// TCO-setting code lives.
type NativeKind int

const (
	// Regular native methods go through the generic trampoline, which also
	// performs the Runnable→Native thread state transition; the paper
	// inserts the TCO write into that transition function.
	Regular NativeKind = iota
	// FastNative methods (@FastNative) skip the state transition, so the
	// TCO write sits directly in their (specifically compiled or generic)
	// trampoline.
	FastNative
	// CriticalNative methods (@CriticalNative) can never touch Java heap
	// objects, so the paper leaves them alone: no TCO write at all.
	CriticalNative
)

// String names the kind after its annotation.
func (k NativeKind) String() string {
	switch k {
	case Regular:
		return "regular"
	case FastNative:
		return "@FastNative"
	case CriticalNative:
		return "@CriticalNative"
	default:
		return fmt.Sprintf("NativeKind(%d)", int(k))
	}
}

// NativeFunc is the body of a native method. It may only touch Java heap
// memory through env's raw-pointer helpers; a synchronous tag-check fault
// aborts it via panic, which the trampoline converts into the returned
// *mte.Fault, modelling a SIGSEGV crash.
type NativeFunc func(env *Env) error

// CallNative invokes a native method through the appropriate trampoline.
//
// The returned values separate the two ways a native call ends abnormally:
// fault is the detected memory-safety violation (MTE sync fault at the
// faulting instruction, MTE async fault surfaced at a syscall or at the
// trampoline exit's synchronization point, or — for copying checkers — nil
// here because guarded copy only detects at Release, which reports through
// the Release interface's error); err is any ordinary error returned by the
// native body or the runtime.
func (e *Env) CallNative(name string, kind NativeKind, fn NativeFunc) (fault *mte.Fault, err error) {
	// Native entry is a cancellation checkpoint: a request whose context has
	// already ended never pays for the trampoline transition or the native
	// body. The poll is nil-safe and allocation-free when no context is
	// bound, so detached execution (benchmarks, tests) is unaffected.
	if cerr := e.execCtx.Canceled(); cerr != nil {
		return nil, cerr
	}
	t := e.thread

	// Entry trampoline. The previous TCO value and thread state are saved
	// and restored rather than reset, so re-entrant stacks (native → Java
	// → native) keep the outer native frame protected after the inner one
	// returns.
	prevTCO := t.Ctx().TCO()
	var prevState vm.ThreadState
	var popOuter func()
	switch kind {
	case Regular:
		popOuter = t.Ctx().Enter("art_quick_generic_jni_trampoline+152 (libart.so)")
		prevState = t.SetState(vm.StateNative)
		// The paper puts the TCO write inside the thread state transition
		// function for regular natives (§4.3).
		if e.mteThreadControl {
			t.Ctx().SetTCO(false)
		}
	case FastNative:
		popOuter = t.Ctx().Enter("art_jni_trampoline (@FastNative)")
		// No state transition; TCO is written directly in the trampoline.
		if e.mteThreadControl {
			t.Ctx().SetTCO(false)
		}
	case CriticalNative:
		popOuter = t.Ctx().Enter("art_jni_trampoline (@CriticalNative)")
		// Never touches the heap: checking stays off.
	}
	popFrame := t.Ctx().Enter("Java_com_example_app_MainActivity_" + name + "+0")
	if e.tracing() {
		e.trace(TraceEvent{Kind: TraceNativeEnter, Iface: name})
	}

	defer func() {
		popFrame()
		// Exit trampoline: restore TCO and thread state.
		if kind != CriticalNative && e.mteThreadControl {
			t.Ctx().SetTCO(prevTCO)
		}
		if kind == Regular {
			t.SetState(prevState)
		}
		popOuter()

		if r := recover(); r != nil {
			f, ok := r.(*mte.Fault)
			if !ok {
				panic(r) // not a simulated signal; let it crash the test
			}
			fault = f
			err = nil
			if e.tracing() {
				e.trace(TraceEvent{Kind: TraceFault, Iface: name, Err: f.Error()})
			}
			return
		}
		// Returning to managed code is a synchronization point (the state
		// transition involves kernel interaction); deferred async faults
		// that never met a syscall inside the native body surface here.
		if fault == nil && t.Ctx().CheckMode() == mte.TCFAsync {
			if f := t.Ctx().TakeAsyncFault("art_quick_generic_jni_trampoline+200 (libart.so)"); f != nil {
				fault = f
			}
		}
		if e.tracing() {
			if fault != nil {
				e.trace(TraceEvent{Kind: TraceFault, Iface: name, Err: fault.Error()})
			}
			e.trace(TraceEvent{Kind: TraceNativeExit, Iface: name})
		}
	}()

	err = fn(e)
	return fault, err
}
