package jni

import "math"

// Bit-cast helpers for the float/double access helpers; thin named wrappers
// keep the call sites aligned with how AArch64 moves FP registers through
// integer loads/stores.

// float32bits returns the IEEE-754 bit pattern of f.
func float32bits(f float32) uint32 { return math.Float32bits(f) }

// float32frombits reinterprets bits as a float32.
func float32frombits(b uint32) float32 { return math.Float32frombits(b) }

// float64bits returns the IEEE-754 bit pattern of f.
func float64bits(f float64) uint64 { return math.Float64bits(f) }

// float64frombits reinterprets bits as a float64.
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
