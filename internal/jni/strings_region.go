package jni

import (
	"fmt"

	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// The string-region interfaces complete the JNI string surface: like the
// array regions they copy into caller buffers under runtime bounds
// checking, so they are safe by construction and need no protection scheme
// involvement — they are here so code ported from real JNI has the full
// vocabulary.

// GetStringRegion copies count UTF-16 code units starting at start into
// dst.
func (e *Env) GetStringRegion(str *vm.Object, start, count int, dst []uint16) error {
	if err := e.requireString(str, "GetStringRegion"); err != nil {
		return err
	}
	if start < 0 || count < 0 || start+count > str.Len() {
		return fmt.Errorf("jni: GetStringRegion: StringIndexOutOfBoundsException: region [%d,%d) of length %d",
			start, start+count, str.Len())
	}
	if len(dst) != count {
		return fmt.Errorf("jni: GetStringRegion: buffer holds %d units, want %d", len(dst), count)
	}
	for i := 0; i < count; i++ {
		bits, err := str.GetElem(start + i)
		if err != nil {
			return err
		}
		dst[i] = uint16(bits)
	}
	return nil
}

// GetStringUTFRegion copies the Modified UTF-8 encoding of count UTF-16
// units starting at start into dst, returning the number of bytes written.
// dst must be large enough (3 bytes per unit is always sufficient).
func (e *Env) GetStringUTFRegion(str *vm.Object, start, count int, dst []byte) (int, error) {
	if err := e.requireString(str, "GetStringUTFRegion"); err != nil {
		return 0, err
	}
	if start < 0 || count < 0 || start+count > str.Len() {
		return 0, fmt.Errorf("jni: GetStringUTFRegion: StringIndexOutOfBoundsException: region [%d,%d) of length %d",
			start, start+count, str.Len())
	}
	units := make([]uint16, count)
	if err := e.GetStringRegion(str, start, count, units); err != nil {
		return 0, err
	}
	utf := EncodeModifiedUTF8(units)
	if len(dst) < len(utf) {
		return 0, fmt.Errorf("jni: GetStringUTFRegion: buffer is %d bytes, need %d", len(dst), len(utf))
	}
	copy(dst, utf)
	return len(utf), nil
}

// --- Remaining typed access helpers -----------------------------------------

// LoadShort performs a checked 16-bit load interpreted as a Java short.
func (e *Env) LoadShort(p mte.Ptr) int16 { return int16(e.LoadChar(p)) }

// StoreShort performs a checked 16-bit store of a Java short.
func (e *Env) StoreShort(p mte.Ptr, v int16) { e.StoreChar(p, uint16(v)) }

// LoadFloat performs a checked 32-bit load interpreted as a Java float.
func (e *Env) LoadFloat(p mte.Ptr) float32 {
	return float32frombits(uint32(e.LoadInt(p)))
}

// StoreFloat performs a checked 32-bit store of a Java float.
func (e *Env) StoreFloat(p mte.Ptr, v float32) {
	e.StoreInt(p, int32(float32bits(v)))
}

// LoadDouble performs a checked 64-bit load interpreted as a Java double.
func (e *Env) LoadDouble(p mte.Ptr) float64 {
	return float64frombits(uint64(e.LoadLong(p)))
}

// StoreDouble performs a checked 64-bit store of a Java double.
func (e *Env) StoreDouble(p mte.Ptr, v float64) {
	e.StoreLong(p, int64(float64bits(v)))
}

// NewGlobalRef promotes an object to a process-wide GC root, like JNI
// NewGlobalRef.
func (e *Env) NewGlobalRef(obj *vm.Object) *vm.Object {
	e.vm.AddGlobalRef(obj)
	return obj
}

// DeleteGlobalRef drops a global reference created by NewGlobalRef.
func (e *Env) DeleteGlobalRef(obj *vm.Object) {
	e.vm.DeleteGlobalRef(obj)
}
