package jni

import (
	"fmt"
	"unicode/utf16"
)

// Modified UTF-8 is the encoding GetStringUTFChars hands to native code
// (JNI spec §3.3.x): like UTF-8, except U+0000 is encoded as the two-byte
// sequence 0xC0 0x80 and supplementary characters are encoded as CESU-8
// surrogate pairs (two three-byte sequences). Implementing it exactly keeps
// the UTFChars path honest about buffer sizes, which is what gets tagged or
// guarded.

// EncodeModifiedUTF8 converts UTF-16 code units to Java Modified UTF-8.
func EncodeModifiedUTF8(units []uint16) []byte {
	out := make([]byte, 0, len(units))
	for _, u := range units {
		switch {
		case u == 0:
			out = append(out, 0xC0, 0x80)
		case u < 0x80:
			out = append(out, byte(u))
		case u < 0x800:
			out = append(out, 0xC0|byte(u>>6), 0x80|byte(u&0x3F))
		default:
			// Includes unpaired and paired surrogates: CESU-8 encodes each
			// UTF-16 unit independently as a three-byte sequence.
			out = append(out, 0xE0|byte(u>>12), 0x80|byte(u>>6&0x3F), 0x80|byte(u&0x3F))
		}
	}
	return out
}

// DecodeModifiedUTF8 converts Java Modified UTF-8 back to UTF-16 units.
func DecodeModifiedUTF8(b []byte) ([]uint16, error) {
	var units []uint16
	for i := 0; i < len(b); {
		c := b[i]
		switch {
		case c < 0x80:
			units = append(units, uint16(c))
			i++
		case c&0xE0 == 0xC0:
			if i+1 >= len(b) || b[i+1]&0xC0 != 0x80 {
				return nil, fmt.Errorf("jni: truncated 2-byte sequence at %d", i)
			}
			units = append(units, uint16(c&0x1F)<<6|uint16(b[i+1]&0x3F))
			i += 2
		case c&0xF0 == 0xE0:
			if i+2 >= len(b) || b[i+1]&0xC0 != 0x80 || b[i+2]&0xC0 != 0x80 {
				return nil, fmt.Errorf("jni: truncated 3-byte sequence at %d", i)
			}
			units = append(units, uint16(c&0x0F)<<12|uint16(b[i+1]&0x3F)<<6|uint16(b[i+2]&0x3F))
			i += 3
		default:
			return nil, fmt.Errorf("jni: invalid modified-UTF-8 byte 0x%02x at %d", c, i)
		}
	}
	return units, nil
}

// ModifiedUTF8FromString encodes a Go string via its UTF-16 form.
func ModifiedUTF8FromString(s string) []byte {
	return EncodeModifiedUTF8(utf16.Encode([]rune(s)))
}

// StringFromModifiedUTF8 decodes Modified UTF-8 into a Go string.
func StringFromModifiedUTF8(b []byte) (string, error) {
	units, err := DecodeModifiedUTF8(b)
	if err != nil {
		return "", err
	}
	return string(utf16.Decode(units)), nil
}
