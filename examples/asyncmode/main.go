// Asyncmode: the paper's Figure 4 locality comparison, side by side.
//
// The same out-of-bounds write is detected at three very different places:
// guarded copy aborts at the JNI release, MTE sync faults at the exact
// store, and MTE async defers the report to the next system call — the
// program keeps running in between. The full logcat-style crash reports are
// printed for each.
//
//	go run ./examples/asyncmode
package main

import (
	"fmt"
	"log"

	"mte4jni"
)

func main() {
	for _, scheme := range []mte4jni.Scheme{mte4jni.GuardedCopy, mte4jni.MTESync, mte4jni.MTEAsync} {
		d, err := mte4jni.RunDetection(scheme, mte4jni.ScenarioOOBWrite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s: detected %s ===\n", scheme, d.Where)
		fmt.Println(d.Report)
	}

	// The async property, step by step: the bad store goes through, work
	// continues, and the signal arrives at the next syscall.
	rt, err := mte4jni.New(mte4jni.Config{Scheme: mte4jni.MTEAsync})
	if err != nil {
		log.Fatal(err)
	}
	env, err := rt.AttachEnv("main")
	if err != nil {
		log.Fatal(err)
	}
	arr, err := env.NewIntArray(8)
	if err != nil {
		log.Fatal(err)
	}
	fault, err := env.CallNative("timeline", mte4jni.Regular, func(e *mte4jni.Env) error {
		p, err := e.GetPrimitiveArrayCritical(arr)
		if err != nil {
			return err
		}
		e.StoreInt(p.Add(64), 1) // out of bounds — latched, not fatal yet
		fmt.Println("1. out-of-bounds store executed (async mode: no fault yet)")
		e.StoreInt(p, 7) // in-bounds work continues
		fmt.Println("2. more native work ran after the corruption")
		fmt.Println("3. calling getuid()...")
		e.Syscall("getuid") // panics with the deferred fault
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if fault == nil {
		log.Fatal("deferred fault never surfaced")
	}
	fmt.Printf("4. deferred SIGSEGV delivered at %q (async=%v)\n", fault.PC, fault.Async)
}
