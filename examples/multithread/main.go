// Multithread: the paper's §3.1 concurrency story.
//
// Eight native threads concurrently acquire the SAME Java array. MTE4JNI's
// reference-counted tag allocation hands every thread the same tagged
// pointer, and the tag survives until the last thread releases — then it is
// zeroed, so a stale pointer faults.
//
//	go run ./examples/multithread
package main

import (
	"fmt"
	"log"
	"sync"

	"mte4jni"
)

func main() {
	rt, err := mte4jni.New(mte4jni.Config{Scheme: mte4jni.MTESync})
	if err != nil {
		log.Fatal(err)
	}
	mainEnv, err := rt.AttachEnv("main")
	if err != nil {
		log.Fatal(err)
	}
	arr, err := mainEnv.NewIntArray(1024)
	if err != nil {
		log.Fatal(err)
	}

	const threads = 8
	tags := make([]mte4jni.Ptr, threads)
	var wg sync.WaitGroup
	var barrier sync.WaitGroup
	barrier.Add(threads) // all threads hold the array simultaneously
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			env, err := rt.AttachEnv(fmt.Sprintf("native-%d", id))
			if err != nil {
				log.Fatal(err)
			}
			fault, err := env.CallNative("reader", mte4jni.Regular, func(e *mte4jni.Env) error {
				p, err := e.GetPrimitiveArrayCritical(arr)
				if err != nil {
					return err
				}
				tags[id] = p
				barrier.Done()
				barrier.Wait() // everyone holds the pointer at once
				sum := int32(0)
				for j := 0; j < 1024; j++ {
					sum += e.LoadInt(p.Add(int64(j * 4)))
				}
				return e.ReleasePrimitiveArrayCritical(arr, p, mte4jni.JNIAbort)
			})
			if fault != nil || err != nil {
				log.Fatalf("thread %d: fault=%v err=%v", id, fault, err)
			}
		}(i)
	}
	wg.Wait()

	for i := 1; i < threads; i++ {
		if tags[i] != tags[0] {
			log.Fatalf("thread %d got a different pointer: %v vs %v", i, tags[i], tags[0])
		}
	}
	fmt.Printf("all %d threads shared one tagged pointer: %v (tag %v)\n", threads, tags[0], tags[0].Tag())

	st := rt.Protector().Stats()
	fmt.Printf("tag allocations: %d, shared acquisitions: %d, tag releases: %d\n",
		st.TagAllocs, st.SharedAcquires, st.TagReleases)

	// After the last release the tag is gone: the stale pointer faults.
	fault, err := mainEnv.CallNative("staleUse", mte4jni.Regular, func(e *mte4jni.Env) error {
		e.StoreInt(tags[0], 1)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if fault != nil {
		fmt.Printf("stale pointer after last release correctly faults: %v\n", fault)
	} else {
		log.Fatal("stale pointer did not fault")
	}
}
