// Bytecode: the paper's §1 asymmetry, end to end.
//
// The same out-of-bounds write — index 21 of an int[18] — is attempted
// twice against the same runtime:
//
//  1. from MANAGED bytecode: the interpreter's bounds check throws
//     ArrayIndexOutOfBoundsException and no memory is touched;
//
//  2. from NATIVE code via GetPrimitiveArrayCritical: with no protection it
//     silently corrupts the heap, and under MTE4JNI+Sync it dies with a
//     precise SEGV_MTESERR.
//
//     go run ./examples/bytecode
package main

import (
	"errors"
	"fmt"
	"log"

	"mte4jni"
	"mte4jni/internal/interp"
	"mte4jni/internal/jni"
	"mte4jni/internal/vm"
)

// managedOOB is the bytecode program: new int[18]; a[21] = 0xBAD.
var managedOOB = &interp.Method{
	Name: "managedWrite", MaxLocals: 1, MaxRefs: 1,
	Code: []interp.Inst{
		{Op: interp.OpConst, A: 18},
		{Op: interp.OpNewArray, A: 0},
		{Op: interp.OpConst, A: 21},
		{Op: interp.OpConst, A: 0xBAD},
		{Op: interp.OpArrayPut, A: 0},
		{Op: interp.OpConst, A: 0},
		{Op: interp.OpReturn},
	},
}

// nativeOOB calls into native code that does the same write via a raw
// pointer.
var nativeOOB = &interp.Method{
	Name: "nativeWrite", MaxLocals: 1, MaxRefs: 1,
	NativeNames: []string{"test_ofb"},
	Code: []interp.Inst{
		{Op: interp.OpConst, A: 18},
		{Op: interp.OpNewArray, A: 0},
		{Op: interp.OpCallNative, A: 0, B: 0},
		{Op: interp.OpConst, A: 0},
		{Op: interp.OpReturn},
	},
}

func demo(scheme mte4jni.Scheme) {
	fmt.Printf("--- scheme: %s ---\n", scheme)
	rt, err := mte4jni.New(mte4jni.Config{Scheme: scheme})
	if err != nil {
		log.Fatal(err)
	}
	env, err := rt.AttachEnv("main")
	if err != nil {
		log.Fatal(err)
	}
	ip := interp.New(env)
	ip.RegisterNative("test_ofb", interp.NativeMethod{
		Kind: jni.Regular,
		Body: func(e *jni.Env, arr *vm.Object) error {
			p, err := e.GetPrimitiveArrayCritical(arr)
			if err != nil {
				return err
			}
			e.StoreInt(p.Add(21*4), 0xBAD)
			return e.ReleasePrimitiveArrayCritical(arr, p, mte4jni.ReleaseDefault)
		},
	})

	// 1. Managed write: always safely rejected, regardless of scheme.
	_, fault, err := ip.Invoke(managedOOB)
	var thrown *interp.ThrownException
	if errors.As(err, &thrown) {
		fmt.Printf("managed bytecode: thrown %s\n", thrown.Kind)
	} else {
		log.Fatalf("managed write did not throw: fault=%v err=%v", fault, err)
	}

	// 2. Native write through JNI: scheme decides.
	_, fault, err = ip.Invoke(nativeOOB)
	switch {
	case err != nil:
		fmt.Printf("native via JNI:   release-time detection: %v\n\n", err)
	case fault != nil:
		fmt.Printf("native via JNI:   process crash: %v\n\n", fault)
	default:
		fmt.Printf("native via JNI:   terminated normally — heap silently corrupted!\n\n")
	}
}

func main() {
	demo(mte4jni.NoProtection)
	demo(mte4jni.MTESync)
}
