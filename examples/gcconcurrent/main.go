// GCConcurrent: the paper's §3.3 challenge, live.
//
// While a native thread holds a tagged raw pointer, the garbage collector
// scans the heap through UNTAGGED pointers (GC pointers never pass through
// JNI). With the naive process-level MTE enable (prctl-style), the GC
// faults on the first tagged object. With the paper's thread-level TCO
// control — checking is switched on only inside native code by the
// trampolines — the GC scans freely.
//
//	go run ./examples/gcconcurrent
package main

import (
	"fmt"
	"log"
	"sync"

	"mte4jni"
)

// demo runs the scenario under one policy and reports what the GC saw.
func demo(processLevel bool) {
	policy := "thread-level TCO control (the paper's design)"
	if processLevel {
		policy = "naive process-level MTE (rejected in §3.3)"
	}
	fmt.Printf("--- %s ---\n", policy)

	rt, err := mte4jni.New(mte4jni.Config{Scheme: mte4jni.MTESync, ProcessLevelMTE: processLevel})
	if err != nil {
		log.Fatal(err)
	}
	env, err := rt.AttachEnv("main")
	if err != nil {
		log.Fatal(err)
	}
	// A populated heap for the GC to walk.
	var arrays []*mte4jni.Object
	for i := 0; i < 64; i++ {
		a, err := env.NewIntArray(256)
		if err != nil {
			log.Fatal(err)
		}
		arrays = append(arrays, a)
	}
	gcThread, err := rt.VM().NewGCThread()
	if err != nil {
		log.Fatal(err)
	}

	acquired := make(chan struct{})
	hold := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fault, err := env.CallNative("holdPointers", mte4jni.Regular, func(e *mte4jni.Env) error {
			// Tag a batch of arrays by acquiring them.
			var ptrs []mte4jni.Ptr
			for _, a := range arrays[:16] {
				p, err := e.GetPrimitiveArrayCritical(a)
				if err != nil {
					return err
				}
				ptrs = append(ptrs, p)
			}
			close(acquired) // tags are live; let the GC scan now
			<-hold          // GC scans while we hold the tagged pointers
			for i, a := range arrays[:16] {
				if err := e.ReleasePrimitiveArrayCritical(a, ptrs[i], mte4jni.JNIAbort); err != nil {
					return err
				}
			}
			return nil
		})
		if fault != nil || err != nil {
			log.Fatalf("native thread: fault=%v err=%v", fault, err)
		}
	}()

	<-acquired
	fault, scanned := rt.VM().ConcurrentScan(gcThread.Ctx())
	close(hold)
	wg.Wait()

	if fault != nil {
		fmt.Printf("GC crashed after scanning %d objects: %v\n\n", scanned, fault)
	} else {
		fmt.Printf("GC scanned all %d objects without faulting\n\n", scanned)
	}
}

func main() {
	demo(true)  // the problem
	demo(false) // the paper's solution
}
