// Quickstart: the paper's Figure 3 program in ~40 lines.
//
// A Java int[18] is handed to "native code" through
// GetPrimitiveArrayCritical; the native code writes index 21. Under
// MTE4JNI+Sync the store faults immediately with a precise report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mte4jni"
)

func main() {
	rt, err := mte4jni.New(mte4jni.Config{Scheme: mte4jni.MTESync})
	if err != nil {
		log.Fatal(err)
	}
	env, err := rt.AttachEnv("main")
	if err != nil {
		log.Fatal(err)
	}
	arr, err := env.NewIntArray(18)
	if err != nil {
		log.Fatal(err)
	}

	fault, err := env.CallNative("test_ofb", mte4jni.Regular, func(e *mte4jni.Env) error {
		p, err := e.GetPrimitiveArrayCritical(arr)
		if err != nil {
			return err
		}
		fmt.Printf("native code got tagged pointer %v (tag %v)\n", p, p.Tag())
		e.StoreInt(p.Add(5*4), 42)     // in bounds: fine
		e.StoreInt(p.Add(21*4), 0xBAD) // index 21 of 18: SIGSEGV under MTE
		return e.ReleasePrimitiveArrayCritical(arr, p, mte4jni.ReleaseDefault)
	})
	if err != nil {
		log.Fatal(err)
	}
	if fault == nil {
		log.Fatal("the out-of-bounds write was not detected?!")
	}
	fmt.Printf("\ndetected: %v\n", fault)
	if v, _ := arr.GetInt(5); v == 42 {
		fmt.Println("in-bounds write landed; out-of-bounds write was caught before corrupting memory")
	}
}
