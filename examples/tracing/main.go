// Tracing: the development-phase diagnostics angle of the paper.
//
// MTE4JNI's pitch is a secure runtime environment that surfaces JNI memory
// bugs while an app is being developed. This example turns on JNI call
// tracing (à la ART's -verbose:jni), runs a buggy native method, and shows
// how the trace ties the fault back to the exact Get that produced the
// misused pointer.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"log"
	"os"

	"mte4jni"
	"mte4jni/internal/jni"
)

func main() {
	rt, err := mte4jni.New(mte4jni.Config{Scheme: mte4jni.MTESync})
	if err != nil {
		log.Fatal(err)
	}
	env, err := rt.AttachEnv("main")
	if err != nil {
		log.Fatal(err)
	}
	env.SetTracer(jni.NewWriterTracer(os.Stdout))

	arr, err := env.NewIntArray(18)
	if err != nil {
		log.Fatal(err)
	}
	str, err := env.NewString("hello")
	if err != nil {
		log.Fatal(err)
	}

	// A healthy native method first: get, use, release — four trace lines.
	env.CallNative("healthy", mte4jni.Regular, func(e *mte4jni.Env) error {
		p, err := e.GetStringChars(str)
		if err != nil {
			return err
		}
		_ = e.LoadChar(p)
		return e.ReleaseStringChars(str, p)
	})

	// Now the buggy one: the trace shows the Get that handed out the
	// pointer and then the fault, with no orderly native-exit line —
	// exactly the breadcrumb a developer needs.
	fault, err := env.CallNative("buggy", mte4jni.Regular, func(e *mte4jni.Env) error {
		p, err := e.GetPrimitiveArrayCritical(arr)
		if err != nil {
			return err
		}
		e.StoreInt(p.Add(21*4), 0xBAD)
		return e.ReleasePrimitiveArrayCritical(arr, p, mte4jni.ReleaseDefault)
	})
	if err != nil {
		log.Fatal(err)
	}
	if fault == nil {
		log.Fatal("the bug went undetected")
	}
	fmt.Printf("\nthe fault's pointer %v matches the traced Get above (tag %v)\n",
		fault.Ptr, fault.Ptr.Tag())
}
