package mte4jni

import (
	"runtime"
	"strings"
	"testing"

	"mte4jni/internal/report"
)

func TestSchemeNamesAndHelpers(t *testing.T) {
	if len(Schemes()) != 4 {
		t.Fatal("four schemes expected")
	}
	if NoProtection.String() != "No protection" || GuardedCopy.String() != "Guarded copy" ||
		MTESync.String() != "MTE4JNI+Sync" || MTEAsync.String() != "MTE4JNI+Async" {
		t.Fatal("scheme names wrong")
	}
	if NoProtection.MTE() || GuardedCopy.MTE() || !MTESync.MTE() || !MTEAsync.MTE() {
		t.Fatal("Scheme.MTE wrong")
	}
}

func TestRuntimeConstruction(t *testing.T) {
	for _, s := range Schemes() {
		rt, err := New(Config{Scheme: s, HeapSize: 4 << 20})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if rt.Scheme() != s {
			t.Fatalf("%v: scheme mismatch", s)
		}
		env, err := rt.AttachEnv("main")
		if err != nil {
			t.Fatal(err)
		}
		if s.MTE() && rt.Protector() == nil {
			t.Fatalf("%v: no protector", s)
		}
		if s == GuardedCopy && rt.GuardedChecker() == nil {
			t.Fatal("guarded scheme without guarded checker")
		}
		if s == NoProtection && (rt.Protector() != nil || rt.GuardedChecker() != nil) {
			t.Fatal("no-protection runtime exposes checkers")
		}
		rt.DetachEnv(env)
	}
	if _, err := New(Config{Scheme: Scheme(99)}); err == nil {
		t.Fatal("invalid scheme accepted")
	}
}

func TestMustNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic on invalid config")
		}
	}()
	MustNew(Config{Scheme: Scheme(99)})
}

// TestEffectivenessMatrix is the §5.2 acceptance test: the detection
// capabilities of the four schemes must reproduce the paper's qualitative
// results exactly.
func TestEffectivenessMatrix(t *testing.T) {
	m, err := RunEffectiveness()
	if err != nil {
		t.Fatal(err)
	}
	get := func(sc Scenario, s Scheme) Detection {
		for i, scenario := range m.Scenarios {
			if scenario == sc {
				for j, scheme := range m.Schemes {
					if scheme == s {
						return m.Results[i][j]
					}
				}
			}
		}
		t.Fatalf("missing cell %v/%v", sc, s)
		return Detection{}
	}

	// Figure 3/4: the OOB write.
	if d := get(ScenarioOOBWrite, NoProtection); d.Detected {
		t.Fatal("no-protection must miss the OOB write")
	}
	if d := get(ScenarioOOBWrite, GuardedCopy); !d.Detected || d.Where != report.AtRelease {
		t.Fatalf("guarded copy: %+v", d)
	}
	if d := get(ScenarioOOBWrite, MTESync); !d.Detected || d.Where != report.AtFaultingInstruction {
		t.Fatalf("MTE sync: %+v", d)
	}
	if d := get(ScenarioOOBWrite, MTEAsync); !d.Detected || d.Where != report.AtNextSyscall {
		t.Fatalf("MTE async: %+v", d)
	}

	// §2.3 limitation 1: reads.
	if d := get(ScenarioOOBRead, GuardedCopy); d.Detected {
		t.Fatal("guarded copy cannot detect OOB reads")
	}
	if d := get(ScenarioOOBRead, MTESync); !d.Detected {
		t.Fatal("MTE sync must detect OOB reads")
	}
	if d := get(ScenarioOOBRead, MTEAsync); !d.Detected {
		t.Fatal("MTE async must detect OOB reads")
	}

	// §2.3 limitation 2: far writes skipping the red zones.
	if d := get(ScenarioFarOOBWrite, GuardedCopy); d.Detected {
		t.Fatal("guarded copy cannot detect far OOB writes")
	}
	if d := get(ScenarioFarOOBWrite, MTESync); !d.Detected {
		t.Fatal("MTE sync must detect far OOB writes")
	}

	// Temporal: use after release.
	if d := get(ScenarioUseAfterRelease, GuardedCopy); d.Detected {
		t.Fatal("guarded copy cannot detect use-after-release")
	}
	if d := get(ScenarioUseAfterRelease, MTESync); !d.Detected {
		t.Fatal("MTE sync must detect use-after-release")
	}

	// The crash reports must look like Figure 4's logcat output.
	syncRep := get(ScenarioOOBWrite, MTESync).Report
	for _, want := range []string{"SEGV_MTESERR", "backtrace:", "#00 pc", "test_ofb"} {
		if !strings.Contains(syncRep, want) {
			t.Fatalf("sync report missing %q:\n%s", want, syncRep)
		}
	}
	asyncRep := get(ScenarioOOBWrite, MTEAsync).Report
	for _, want := range []string{"SEGV_MTEAERR", "getuid"} {
		if !strings.Contains(asyncRep, want) {
			t.Fatalf("async report missing %q:\n%s", want, asyncRep)
		}
	}
	guardedRep := get(ScenarioOOBWrite, GuardedCopy).Report
	for _, want := range []string{"SIGABRT", "abort", "Runtime::Abort"} {
		if !strings.Contains(guardedRep, want) {
			t.Fatalf("guarded report missing %q:\n%s", want, guardedRep)
		}
	}
	if s := m.Summary(); !strings.Contains(s, "DETECTED") || !strings.Contains(s, "missed") {
		t.Fatalf("summary rendering:\n%s", s)
	}
}

// TestFig5Shape checks the qualitative claims of §5.3.1 on a reduced sweep:
// guarded copy is the most expensive scheme at every length, and its
// slowdown shrinks as arrays grow.
func TestFig5Shape(t *testing.T) {
	res, err := RunFig5(Fig5Options{MinPow: 2, MaxPow: 9, Warmup: 2, Reps: 9, InnerIters: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Average across the sweep is the paper's headline comparison (26.58x
	// vs 2.36x vs 2.24x); per-length numbers are too noisy for CI-grade
	// assertions, so assert on the averages with slack.
	g := res.Average[GuardedCopy]
	if g < res.Average[MTESync]*0.9 || g < res.Average[MTEAsync]*0.9 {
		t.Errorf("guarded copy average (%.2fx) not the most expensive (sync %.2fx async %.2fx)",
			g, res.Average[MTESync], res.Average[MTEAsync])
	}
	if g < 1.5 {
		t.Errorf("guarded copy average %.2fx implausibly low", g)
	}
	if fig := res.Figure().String(); !strings.Contains(fig, "Guarded copy") {
		t.Fatalf("figure rendering:\n%s", fig)
	}
}

// TestFig6Shape checks §5.3.2's qualitative claims on a reduced
// configuration: guarded copy is by far the slowest, and the global lock
// hurts more than two-tier locking in the different-arrays test.
func TestFig6Shape(t *testing.T) {
	res, err := RunFig6(Fig6Options{Threads: 8, Iters: 400, ArrayLen: 1024, Reps: 3, Warmup: 1})
	if err != nil {
		t.Fatal(err)
	}
	idx := func(name string) int {
		for i, v := range res.Variants {
			if v.Display == name {
				return i
			}
		}
		t.Fatalf("variant %q missing", name)
		return -1
	}
	for _, test := range []struct {
		name   string
		ratios []float64
	}{{"same", res.SameArray}, {"different", res.DifferentArrays}} {
		guarded := test.ratios[idx("Guarded Copy")]
		twoTier := test.ratios[idx("MTE4JNI+Sync")]
		if guarded < twoTier*0.9 {
			t.Errorf("%s: guarded copy (%.2fx) faster than MTE4JNI (%.2fx)", test.name, guarded, twoTier)
		}
		if guarded < 1.5 {
			t.Errorf("%s: guarded copy only %.2fx", test.name, guarded)
		}
	}
	// In the different-arrays test the global lock must cost more than
	// two-tier (the paper's 2.20x vs 1.21x gap). Lock contention needs
	// hardware parallelism to show up in wall-clock time, so the assertion
	// only runs on multicore hosts; single-CPU machines verify via the
	// contention counters being recorded at all.
	if runtime.NumCPU() > 1 {
		gl := res.DifferentArrays[idx("MTE4JNI+Sync+global_lock")]
		tt := res.DifferentArrays[idx("MTE4JNI+Sync")]
		if gl < tt*0.85 {
			t.Errorf("different arrays: global lock (%.2fx) outperformed two-tier (%.2fx)", gl, tt)
		}
	}
	if len(res.SameArrayContention) != len(res.Variants) {
		t.Fatalf("contention stats missing: %d entries for %d variants",
			len(res.SameArrayContention), len(res.Variants))
	}
	if tab := res.ContentionTable().String(); !strings.Contains(tab, "MTE4JNI+Sync") {
		t.Fatalf("contention table rendering:\n%s", tab)
	}
	if fig := res.Figure().String(); !strings.Contains(fig, "Same Array") {
		t.Fatalf("figure rendering:\n%s", fig)
	}
}

// TestGeekbenchSmall runs a three-workload slice of the suite end to end,
// including the paper's intensive exceptions, checking ratios are sane
// (0 < ratio <= ~1.2).
func TestGeekbenchSmall(t *testing.T) {
	res, err := RunGeekbench(GeekbenchOptions{
		Cores: 1, Scale: ScaleSmall, Reps: 3, Warmup: 1,
		Only: []string{"File Compression", "Clang", "Ray Tracer"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// At test scale the runs are microseconds long, so ratios are noisy;
	// only assert they are in a sane band (the benchmark-scale run in
	// bench_test.go is where the paper's percentages are reproduced).
	for _, s := range []Scheme{GuardedCopy, MTESync, MTEAsync} {
		for i, r := range res.Ratios[s] {
			if r <= 0.05 || r > 3 {
				t.Errorf("%v %s ratio %.2f out of range", s, res.Workloads[i], r)
			}
		}
	}
	if fig := res.Figure().String(); !strings.Contains(fig, "Clang") {
		t.Fatalf("figure rendering:\n%s", fig)
	}
}

func TestAlignmentGranuleSharing(t *testing.T) {
	res, err := RunAlignmentAblation([]int{1, 4, 8, 12, 16, 24, 33})
	if err != nil {
		t.Fatal(err)
	}
	if res.MissedByAlignment[16] != 0 {
		t.Fatalf("16-byte alignment missed %d adjacent OOB writes; must miss none", res.MissedByAlignment[16])
	}
	if res.MissedByAlignment[8] == 0 {
		t.Fatal("8-byte alignment missed nothing; the §4.1 hazard should appear")
	}
	if tab := res.Table().String(); !strings.Contains(tab, "MISSED") {
		t.Fatalf("table rendering:\n%s", tab)
	}
}

func TestTagCollisionProbability(t *testing.T) {
	res, err := RunTagCollisionAblation(1200)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(res.MissedRandom) / float64(res.Trials)
	// Expected 1/15 ≈ 6.7%; allow generous sampling slack.
	if rate < 0.02 || rate > 0.13 {
		t.Errorf("random-tag collision rate %.3f, expected ≈0.067", rate)
	}
	if res.MissedExcluding != 0 {
		t.Errorf("neighbour exclusion missed %d writes, want 0", res.MissedExcluding)
	}
	if tab := res.Table().String(); !strings.Contains(tab, "random") {
		t.Fatalf("table rendering:\n%s", tab)
	}
}

func TestHashTableAblationRuns(t *testing.T) {
	res, err := RunHashTableAblation([]int{1, 16}, Fig6Options{Threads: 8, Iters: 200, ArrayLen: 256, Reps: 2, Warmup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 2 || res.Durations[0] <= 0 {
		t.Fatalf("durations: %v", res.Durations)
	}
	if tab := res.Table().String(); !strings.Contains(tab, "k") {
		t.Fatalf("table rendering:\n%s", tab)
	}
}

// TestGCConcurrentScanUnderMTE4JNI is the §3.3 end-to-end check through the
// public API: with thread-level TCO control the GC can scan while native
// code holds tagged pointers; with naive process-level MTE it faults.
func TestGCConcurrentScanUnderMTE4JNI(t *testing.T) {
	for _, processLevel := range []bool{false, true} {
		rt, err := New(Config{Scheme: MTESync, ProcessLevelMTE: processLevel, HeapSize: 8 << 20})
		if err != nil {
			t.Fatal(err)
		}
		env, err := rt.AttachEnv("main")
		if err != nil {
			t.Fatal(err)
		}
		arr, err := env.NewIntArray(1024)
		if err != nil {
			t.Fatal(err)
		}
		gcThread, err := rt.VM().NewGCThread()
		if err != nil {
			t.Fatal(err)
		}

		var scanFault error
		fault, err := env.CallNative("holdPointer", Regular, func(e *Env) error {
			p, err := e.GetPrimitiveArrayCritical(arr)
			if err != nil {
				return err
			}
			// GC scans while the native thread holds the tagged pointer.
			if f, _ := rt.VM().ConcurrentScan(gcThread.Ctx()); f != nil {
				scanFault = f
			}
			return e.ReleasePrimitiveArrayCritical(arr, p, ReleaseDefault)
		})
		if fault != nil || err != nil {
			t.Fatalf("processLevel=%v: native call failed: %v %v", processLevel, fault, err)
		}
		if processLevel && scanFault == nil {
			t.Fatal("process-level MTE: GC scan must fault on tagged memory")
		}
		if !processLevel && scanFault != nil {
			t.Fatalf("thread-level MTE: GC scan faulted: %v", scanFault)
		}
	}
}
