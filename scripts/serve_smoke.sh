#!/bin/sh
# serve_smoke.sh — end-to-end gate for the serving layer (make serve-smoke).
#
# Builds the CLI, starts `mte4jni serve` on an ephemeral port with the full
# 64-session pool, drives it with `mte4jni load` twice (a mixed run with
# injected faults, then a 64-worker full-capacity burst), and checks that
# the daemon shuts down cleanly on SIGTERM. The load generator fails on any
# verdict mismatch or metrics discrepancy, so a zero exit here means: every
# injected fault came back as a structured report, no clean request faulted,
# and the server-side counters reconcile with what was sent.
set -eu

GO="${GO:-go}"
TMP="$(mktemp -d)"
BIN="$TMP/mte4jni"
ADDR_FILE="$TMP/addr"
LOG="$TMP/serve.log"
SERVE_PID=""

cleanup() {
	if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
		kill "$SERVE_PID" 2>/dev/null || true
		wait "$SERVE_PID" 2>/dev/null || true
	fi
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$BIN" ./cmd/mte4jni

"$BIN" serve -addr 127.0.0.1:0 -addr-file "$ADDR_FILE" -sessions 64 -heap-mb 16 >"$LOG" 2>&1 &
SERVE_PID=$!

# Wait for the daemon to bind and publish its address.
i=0
while [ ! -s "$ADDR_FILE" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "serve-smoke: server never published its address" >&2
		cat "$LOG" >&2
		exit 1
	fi
	if ! kill -0 "$SERVE_PID" 2>/dev/null; then
		echo "serve-smoke: server exited during startup" >&2
		cat "$LOG" >&2
		exit 1
	fi
	sleep 0.1
done
URL="http://$(cat "$ADDR_FILE")"

# Mixed run: 50 requests, every 10th a deliberately-faulting OOB probe.
# The load generator reconciles the *change* in /metrics over each run, so
# every run below gets the full reconciliation even on a warm server.
"$BIN" load -url "$URL" -n 50 -c 8 -fault-every 10

# Full-capacity burst: 64 concurrent workers saturating all 64 sessions,
# with faults sprinkled in.
"$BIN" load -url "$URL" -n 192 -c 64 -fault-every 16

# Admission-screen run: every 4th request submits a known provably-faulting
# inline program that must come back 422-with-verdict without consuming a
# session (-reject-rate wins over -fault-every on overlapping indices:
# 15 rejects, 3 injected faults, 45 executed requests). The generator
# reconciles the screening counters (screened/rejected/cache-hit) too.
"$BIN" load -url "$URL" -n 60 -c 8 -fault-every 10 -reject-rate 4

# Optional cross-check of the cumulative counters (50+192+45 executed
# requests, 5+12+3 faults, 15 screenings all rejected) when curl is
# available; the per-run delta reconciles above already gated the plumbing.
# The 45+180+42 = 267 canned-safe executions each ran proof-carrying with
# exactly one guard-free site, and none may have fallen back to checked.
if command -v curl >/dev/null 2>&1; then
	METRICS="$TMP/metrics.json"
	curl -fsS "$URL/metrics" >"$METRICS"
	# Of the 15 screenings, the 5 reject_forge submissions each carry a
	# window-risk temporal finding (the forged store's damage window); under
	# the default reject policy none is a *temporal* rejection because the
	# fault screen already turned them away.
	for want in '"requests_total":287' '"faults_total":20' '"quarantined":20' \
		'"screened_total":15' '"screen_rejected_total":15' \
		'"temporal_flagged_total":5' '"temporal_window_risk_total":5' \
		'"temporal_rejected_total":0' \
		'"elided_sites_total":267' '"elision_invalidated_total":0'; do
		if ! grep -q "$want" "$METRICS"; then
			echo "serve-smoke: /metrics missing $want:" >&2
			cat "$METRICS" >&2
			exit 1
		fi
	done

	# Hierarchical tag-storage reconciliation. The warm pool still holds live
	# sessions here, so: the counters must be present, the workloads must have
	# exercised both lazy paths (materializations from partial-page object
	# tagging, zero-dedup from fresh mappings), and the two-level table must
	# be paying >=10x less than the flat tag array would for the same
	# mappings — the headline claim of this storage design.
	for key in tag_pages_materialized_total tag_pages_uniform_total \
		tag_zero_dedup_hits_total tag_bytes_resident tag_bytes_flat_equiv; do
		if ! grep -q "\"$key\":" "$METRICS"; then
			echo "serve-smoke: /metrics missing tag-storage counter $key:" >&2
			cat "$METRICS" >&2
			exit 1
		fi
	done
	materialized="$(sed -n 's/.*"tag_pages_materialized_total":\([0-9]*\).*/\1/p' "$METRICS")"
	dedup="$(sed -n 's/.*"tag_zero_dedup_hits_total":\([0-9]*\).*/\1/p' "$METRICS")"
	resident="$(sed -n 's/.*"tag_bytes_resident":\([0-9]*\).*/\1/p' "$METRICS")"
	flat="$(sed -n 's/.*"tag_bytes_flat_equiv":\([0-9]*\).*/\1/p' "$METRICS")"
	if [ "${materialized:-0}" -eq 0 ] || [ "${dedup:-0}" -eq 0 ]; then
		echo "serve-smoke: tag-storage counters did not move (materialized=$materialized dedup=$dedup)" >&2
		cat "$METRICS" >&2
		exit 1
	fi
	if [ "${resident:-0}" -eq 0 ] || [ "${flat:-0}" -lt $((resident * 10)) ]; then
		echo "serve-smoke: tag residency not >=10x under flat (resident=$resident flat=$flat)" >&2
		cat "$METRICS" >&2
		exit 1
	fi
fi

# Graceful shutdown: SIGTERM must produce a clean exit 0.
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
	echo "serve-smoke: server did not shut down cleanly" >&2
	cat "$LOG" >&2
	exit 1
fi
SERVE_PID=""

# --- Execution-context spine: cancellation and deadline run -----------------
# A second instance with the spine's budgets enabled: a 400ms per-request
# wall-clock deadline and a deliberately huge step budget, so runaway
# programs are cut off by -run-timeout, never by fuel. The load run injects
# client disconnects (-cancel-rate) and runaway programs the deadline must
# kill (-deadline-rate) alongside faults and screen rejects; the generator
# reconciles canceled_total/deadline_exceeded_total exactly and fails if any
# lease leaks (pool.leased != 0 after the drain).
ADDR_FILE2="$TMP/addr2"
LOG2="$TMP/serve2.log"
"$BIN" serve -addr 127.0.0.1:0 -addr-file "$ADDR_FILE2" -sessions 8 -heap-mb 16 \
	-run-timeout 400ms -step-budget $((1 << 40)) -shutdown-timeout 5s >"$LOG2" 2>&1 &
SERVE_PID=$!

i=0
while [ ! -s "$ADDR_FILE2" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "serve-smoke: spine server never published its address" >&2
		cat "$LOG2" >&2
		exit 1
	fi
	if ! kill -0 "$SERVE_PID" 2>/dev/null; then
		echo "serve-smoke: spine server exited during startup" >&2
		cat "$LOG2" >&2
		exit 1
	fi
	sleep 0.1
done
URL2="http://$(cat "$ADDR_FILE2")"

# 40 requests: 8 client-canceled runaways, 4 deadline-killed runaways,
# 3 screen rejects, 4 injected faults (precedence reject > cancel >
# deadline > fault keeps the classes disjoint at these rates).
"$BIN" load -url "$URL2" -n 40 -c 8 -fault-every 9 -reject-rate 11 \
	-cancel-rate 5 -deadline-rate 7

# Cross-check the abort counters and the lease ledger cumulatively.
if command -v curl >/dev/null 2>&1; then
	METRICS2="$TMP/metrics2.json"
	curl -fsS "$URL2/metrics" >"$METRICS2"
	for want in '"canceled_total":8' '"deadline_exceeded_total":4' \
		'"leased":0' '"quarantined":4' \
		'"elided_sites_total":21' '"elision_invalidated_total":0'; do
		if ! grep -q "$want" "$METRICS2"; then
			echo "serve-smoke: spine /metrics missing $want:" >&2
			cat "$METRICS2" >&2
			exit 1
		fi
	done
fi

kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
	echo "serve-smoke: spine server did not shut down cleanly" >&2
	cat "$LOG2" >&2
	exit 1
fi
SERVE_PID=""

# --- Temporal screening: admission-policy run -------------------------------
# A third instance under the default -temporal-policy reject, driven purely
# with the red-team temporal corpus (-temporal-rate 1): 12 submissions cycle
# 3x through async-window/damage and gc-race/scan-window (under async) and
# guardedcopy/oob-read and guardedcopy/lost-update (under guarded). All 12
# are flagged with their window class; 9 are provable faults the screen
# rejects, and the 3 lost-update submissions — clean to the fault screen —
# are rejected by the temporal policy with the full provenance chain. The
# load generator reconciles every temporal counter delta exactly; the greps
# below pin the cumulative values.
ADDR_FILE3="$TMP/addr3"
LOG3="$TMP/serve3.log"
"$BIN" serve -addr 127.0.0.1:0 -addr-file "$ADDR_FILE3" -sessions 4 -heap-mb 16 \
	-temporal-policy reject >"$LOG3" 2>&1 &
SERVE_PID=$!

i=0
while [ ! -s "$ADDR_FILE3" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "serve-smoke: temporal server never published its address" >&2
		cat "$LOG3" >&2
		exit 1
	fi
	if ! kill -0 "$SERVE_PID" 2>/dev/null; then
		echo "serve-smoke: temporal server exited during startup" >&2
		cat "$LOG3" >&2
		exit 1
	fi
	sleep 0.1
done
URL3="http://$(cat "$ADDR_FILE3")"

"$BIN" load -url "$URL3" -n 12 -c 4 -temporal-rate 1

if command -v curl >/dev/null 2>&1; then
	METRICS3="$TMP/metrics3.json"
	curl -fsS "$URL3/metrics" >"$METRICS3"
	for want in '"temporal_flagged_total":12' '"temporal_window_risk_total":3' \
		'"temporal_scan_race_total":3' '"temporal_guardedcopy_blindspot_total":6' \
		'"temporal_rejected_total":3' \
		'"screened_total":12' '"screen_rejected_total":9' \
		'"requests_total":0' '"faults_total":0'; do
		if ! grep -q "$want" "$METRICS3"; then
			echo "serve-smoke: temporal /metrics missing $want:" >&2
			cat "$METRICS3" >&2
			exit 1
		fi
	done
fi

kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
	echo "serve-smoke: temporal server did not shut down cleanly" >&2
	cat "$LOG3" >&2
	exit 1
fi
SERVE_PID=""

echo "serve-smoke: ok (287 + 37 requests, 24 injected faults detected, 18 bad programs screened out, 8 cancels + 4 deadlines reconciled, 267 + 21 guard-free sites with zero proof invalidations, tag residency >=10x under flat, 12 temporal corpus programs flagged with 3 policy rejections, clean shutdown)"
