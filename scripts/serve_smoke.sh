#!/bin/sh
# serve_smoke.sh — end-to-end gate for the serving layer (make serve-smoke).
#
# Builds the CLI, starts `mte4jni serve` on an ephemeral port with the full
# 64-session pool, drives it with `mte4jni load` twice (a mixed run with
# injected faults, then a 64-worker full-capacity burst), and checks that
# the daemon shuts down cleanly on SIGTERM. The load generator fails on any
# verdict mismatch or metrics discrepancy, so a zero exit here means: every
# injected fault came back as a structured report, no clean request faulted,
# and the server-side counters reconcile with what was sent.
set -eu

GO="${GO:-go}"
TMP="$(mktemp -d)"
BIN="$TMP/mte4jni"
ADDR_FILE="$TMP/addr"
LOG="$TMP/serve.log"
SERVE_PID=""

cleanup() {
	if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
		kill "$SERVE_PID" 2>/dev/null || true
		wait "$SERVE_PID" 2>/dev/null || true
	fi
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$BIN" ./cmd/mte4jni

"$BIN" serve -addr 127.0.0.1:0 -addr-file "$ADDR_FILE" -sessions 64 -heap-mb 16 >"$LOG" 2>&1 &
SERVE_PID=$!

# Wait for the daemon to bind and publish its address.
i=0
while [ ! -s "$ADDR_FILE" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "serve-smoke: server never published its address" >&2
		cat "$LOG" >&2
		exit 1
	fi
	if ! kill -0 "$SERVE_PID" 2>/dev/null; then
		echo "serve-smoke: server exited during startup" >&2
		cat "$LOG" >&2
		exit 1
	fi
	sleep 0.1
done
URL="http://$(cat "$ADDR_FILE")"

# Mixed run: 50 requests, every 10th a deliberately-faulting OOB probe.
# The load generator reconciles the *change* in /metrics over each run, so
# every run below gets the full reconciliation even on a warm server.
"$BIN" load -url "$URL" -n 50 -c 8 -fault-every 10

# Full-capacity burst: 64 concurrent workers saturating all 64 sessions,
# with faults sprinkled in.
"$BIN" load -url "$URL" -n 192 -c 64 -fault-every 16

# Admission-screen run: every 4th request submits a known provably-faulting
# inline program that must come back 422-with-verdict without consuming a
# session (-reject-rate wins over -fault-every on overlapping indices:
# 15 rejects, 3 injected faults, 45 executed requests). The generator
# reconciles the screening counters (screened/rejected/cache-hit) too.
"$BIN" load -url "$URL" -n 60 -c 8 -fault-every 10 -reject-rate 4

# Optional cross-check of the cumulative counters (50+192+45 executed
# requests, 5+12+3 faults, 15 screenings all rejected) when curl is
# available; the per-run delta reconciles above already gated the plumbing.
# The 45+180+42 = 267 canned-safe executions each ran proof-carrying with
# exactly one guard-free site, and none may have fallen back to checked.
if command -v curl >/dev/null 2>&1; then
	METRICS="$TMP/metrics.json"
	curl -fsS "$URL/metrics" >"$METRICS"
	# Of the 15 screenings, the 5 reject_forge submissions each carry a
	# window-risk temporal finding (the forged store's damage window); under
	# the default reject policy none is a *temporal* rejection because the
	# fault screen already turned them away.
	for want in '"requests_total":287' '"faults_total":20' '"quarantined":20' \
		'"screened_total":15' '"screen_rejected_total":15' \
		'"temporal_flagged_total":5' '"temporal_window_risk_total":5' \
		'"temporal_rejected_total":0' \
		'"elided_sites_total":267' '"elision_invalidated_total":0'; do
		if ! grep -q "$want" "$METRICS"; then
			echo "serve-smoke: /metrics missing $want:" >&2
			cat "$METRICS" >&2
			exit 1
		fi
	done

	# Hierarchical tag-storage reconciliation. The warm pool still holds live
	# sessions here, so: the counters must be present, the workloads must have
	# exercised both lazy paths (materializations from partial-page object
	# tagging, zero-dedup from fresh mappings), and the two-level table must
	# be paying >=10x less than the flat tag array would for the same
	# mappings — the headline claim of this storage design.
	for key in tag_pages_materialized_total tag_pages_uniform_total \
		tag_zero_dedup_hits_total tag_bytes_resident tag_bytes_flat_equiv; do
		if ! grep -q "\"$key\":" "$METRICS"; then
			echo "serve-smoke: /metrics missing tag-storage counter $key:" >&2
			cat "$METRICS" >&2
			exit 1
		fi
	done
	materialized="$(sed -n 's/.*"tag_pages_materialized_total":\([0-9]*\).*/\1/p' "$METRICS")"
	dedup="$(sed -n 's/.*"tag_zero_dedup_hits_total":\([0-9]*\).*/\1/p' "$METRICS")"
	resident="$(sed -n 's/.*"tag_bytes_resident":\([0-9]*\).*/\1/p' "$METRICS")"
	flat="$(sed -n 's/.*"tag_bytes_flat_equiv":\([0-9]*\).*/\1/p' "$METRICS")"
	if [ "${materialized:-0}" -eq 0 ] || [ "${dedup:-0}" -eq 0 ]; then
		echo "serve-smoke: tag-storage counters did not move (materialized=$materialized dedup=$dedup)" >&2
		cat "$METRICS" >&2
		exit 1
	fi
	if [ "${resident:-0}" -eq 0 ] || [ "${flat:-0}" -lt $((resident * 10)) ]; then
		echo "serve-smoke: tag residency not >=10x under flat (resident=$resident flat=$flat)" >&2
		cat "$METRICS" >&2
		exit 1
	fi
fi

# Graceful shutdown: SIGTERM must produce a clean exit 0.
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
	echo "serve-smoke: server did not shut down cleanly" >&2
	cat "$LOG" >&2
	exit 1
fi
SERVE_PID=""

# --- Execution-context spine: cancellation and deadline run -----------------
# A second instance with the spine's budgets enabled: a 400ms per-request
# wall-clock deadline and a deliberately huge step budget, so runaway
# programs are cut off by -run-timeout, never by fuel. The load run injects
# client disconnects (-cancel-rate) and runaway programs the deadline must
# kill (-deadline-rate) alongside faults and screen rejects; the generator
# reconciles canceled_total/deadline_exceeded_total exactly and fails if any
# lease leaks (pool.leased != 0 after the drain).
ADDR_FILE2="$TMP/addr2"
LOG2="$TMP/serve2.log"
"$BIN" serve -addr 127.0.0.1:0 -addr-file "$ADDR_FILE2" -sessions 8 -heap-mb 16 \
	-run-timeout 400ms -step-budget $((1 << 40)) -shutdown-timeout 5s >"$LOG2" 2>&1 &
SERVE_PID=$!

i=0
while [ ! -s "$ADDR_FILE2" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "serve-smoke: spine server never published its address" >&2
		cat "$LOG2" >&2
		exit 1
	fi
	if ! kill -0 "$SERVE_PID" 2>/dev/null; then
		echo "serve-smoke: spine server exited during startup" >&2
		cat "$LOG2" >&2
		exit 1
	fi
	sleep 0.1
done
URL2="http://$(cat "$ADDR_FILE2")"

# 40 requests: 8 client-canceled runaways, 4 deadline-killed runaways,
# 3 screen rejects, 4 injected faults (precedence reject > cancel >
# deadline > fault keeps the classes disjoint at these rates).
"$BIN" load -url "$URL2" -n 40 -c 8 -fault-every 9 -reject-rate 11 \
	-cancel-rate 5 -deadline-rate 7

# Cross-check the abort counters and the lease ledger cumulatively.
if command -v curl >/dev/null 2>&1; then
	METRICS2="$TMP/metrics2.json"
	curl -fsS "$URL2/metrics" >"$METRICS2"
	for want in '"canceled_total":8' '"deadline_exceeded_total":4' \
		'"leased":0' '"quarantined":4' \
		'"elided_sites_total":21' '"elision_invalidated_total":0'; do
		if ! grep -q "$want" "$METRICS2"; then
			echo "serve-smoke: spine /metrics missing $want:" >&2
			cat "$METRICS2" >&2
			exit 1
		fi
	done
fi

kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
	echo "serve-smoke: spine server did not shut down cleanly" >&2
	cat "$LOG2" >&2
	exit 1
fi
SERVE_PID=""

# --- Temporal screening: admission-policy run -------------------------------
# A third instance under the default -temporal-policy reject, driven purely
# with the red-team temporal corpus (-temporal-rate 1): 12 submissions cycle
# 3x through async-window/damage and gc-race/scan-window (under async) and
# guardedcopy/oob-read and guardedcopy/lost-update (under guarded). All 12
# are flagged with their window class; 9 are provable faults the screen
# rejects, and the 3 lost-update submissions — clean to the fault screen —
# are rejected by the temporal policy with the full provenance chain. The
# load generator reconciles every temporal counter delta exactly; the greps
# below pin the cumulative values.
ADDR_FILE3="$TMP/addr3"
LOG3="$TMP/serve3.log"
"$BIN" serve -addr 127.0.0.1:0 -addr-file "$ADDR_FILE3" -sessions 4 -heap-mb 16 \
	-temporal-policy reject >"$LOG3" 2>&1 &
SERVE_PID=$!

i=0
while [ ! -s "$ADDR_FILE3" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "serve-smoke: temporal server never published its address" >&2
		cat "$LOG3" >&2
		exit 1
	fi
	if ! kill -0 "$SERVE_PID" 2>/dev/null; then
		echo "serve-smoke: temporal server exited during startup" >&2
		cat "$LOG3" >&2
		exit 1
	fi
	sleep 0.1
done
URL3="http://$(cat "$ADDR_FILE3")"

"$BIN" load -url "$URL3" -n 12 -c 4 -temporal-rate 1

if command -v curl >/dev/null 2>&1; then
	METRICS3="$TMP/metrics3.json"
	curl -fsS "$URL3/metrics" >"$METRICS3"
	for want in '"temporal_flagged_total":12' '"temporal_window_risk_total":3' \
		'"temporal_scan_race_total":3' '"temporal_guardedcopy_blindspot_total":6' \
		'"temporal_rejected_total":3' \
		'"screened_total":12' '"screen_rejected_total":9' \
		'"requests_total":0' '"faults_total":0'; do
		if ! grep -q "$want" "$METRICS3"; then
			echo "serve-smoke: temporal /metrics missing $want:" >&2
			cat "$METRICS3" >&2
			exit 1
		fi
	done
fi

kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
	echo "serve-smoke: temporal server did not shut down cleanly" >&2
	cat "$LOG3" >&2
	exit 1
fi
SERVE_PID=""

# --- Sharded admission: per-shard reconciliation run ------------------------
# A fourth instance with the pool split into 8 admission shards. The load
# generator constructs 32 tenants whose affinity keys spread 4-per-shard by
# construction (-tenants 32 -expect-shards 8), so 128 requests land 16 on
# each shard; it then reconciles the per-shard counters exactly — the sum of
# shard_leases_total must equal created+reused, sheds must equal the pool's
# rejected counter, every shard must end with zero leased and zero waiters,
# and no shard may exceed 2x the mean lease count under this uniform load.
ADDR_FILE4="$TMP/addr4"
LOG4="$TMP/serve4.log"
"$BIN" serve -addr 127.0.0.1:0 -addr-file "$ADDR_FILE4" -sessions 64 -shards 8 \
	-heap-mb 16 >"$LOG4" 2>&1 &
SERVE_PID=$!

i=0
while [ ! -s "$ADDR_FILE4" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "serve-smoke: sharded server never published its address" >&2
		cat "$LOG4" >&2
		exit 1
	fi
	if ! kill -0 "$SERVE_PID" 2>/dev/null; then
		echo "serve-smoke: sharded server exited during startup" >&2
		cat "$LOG4" >&2
		exit 1
	fi
	sleep 0.1
done
URL4="http://$(cat "$ADDR_FILE4")"

"$BIN" load -url "$URL4" -n 128 -c 16 -tenants 32 -expect-shards 8

if command -v curl >/dev/null 2>&1; then
	METRICS4="$TMP/metrics4.json"
	curl -fsS "$URL4/metrics" >"$METRICS4"
	for want in '"shard_leases_total"' '"shard_steals_total"' '"shard_shed_total"' \
		'"requests_total":128'; do
		if ! grep -q "$want" "$METRICS4"; then
			echo "serve-smoke: sharded /metrics missing $want:" >&2
			cat "$METRICS4" >&2
			exit 1
		fi
	done
fi

# Graceful shutdown runs the per-shard drain assertion: a nonzero lease
# ledger on any shard turns into a nonzero daemon exit here.
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
	echo "serve-smoke: sharded server did not shut down cleanly" >&2
	cat "$LOG4" >&2
	exit 1
fi
SERVE_PID=""

# --- Cluster: balancer + open-loop SLO run ----------------------------------
# Two backend daemons (2 shards, 16 sessions each) behind the built-in L7
# balancer. Open-loop Poisson arrivals at 400 req/s exercise the balancer's
# affinity routing and /metrics aggregation; the load generator gates on
# p99 <= 2s from its HDR histogram and writes the JSON report checked below.
# SIGTERM to the parent must drain the balancer, forward the signal to both
# backends (each running its own per-shard drain assertion), and exit zero.
ADDR_FILE5="$TMP/addr5"
LOG5="$TMP/serve5.log"
REPORT5="$TMP/report5.json"
"$BIN" serve -addr 127.0.0.1:0 -addr-file "$ADDR_FILE5" -cluster 2 -shards 2 \
	-sessions 16 -heap-mb 16 >"$LOG5" 2>&1 &
SERVE_PID=$!

i=0
while [ ! -s "$ADDR_FILE5" ]; do
	i=$((i + 1))
	if [ "$i" -gt 200 ]; then
		echo "serve-smoke: cluster never published its address" >&2
		cat "$LOG5" >&2
		exit 1
	fi
	if ! kill -0 "$SERVE_PID" 2>/dev/null; then
		echo "serve-smoke: cluster exited during startup" >&2
		cat "$LOG5" >&2
		exit 1
	fi
	sleep 0.1
done
URL5="http://$(cat "$ADDR_FILE5")"

"$BIN" load -url "$URL5" -n 120 -c 8 -rate 400 -tenants 8 -slo-p99 2s -report "$REPORT5"

for want in '"p99_ns"' '"p999_ns"' '"slo_p99_met": true' '"open_loop": true' \
	'"ok": 120'; do
	if ! grep -q "$want" "$REPORT5"; then
		echo "serve-smoke: load report missing $want:" >&2
		cat "$REPORT5" >&2
		exit 1
	fi
done

kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
	echo "serve-smoke: cluster did not shut down cleanly" >&2
	cat "$LOG5" >&2
	exit 1
fi
SERVE_PID=""

# --- Shard-scaling gate -----------------------------------------------------
# The pool throughput bench rows (pool/Throughput/shards=N) isolate the
# admission path. Two gates: unconditionally, 8 shards must never be worse
# than 2x one shard (the split must not add cost); and when the host has
# >= 4 CPUs, 8 shards must be at least 2x faster than 1 (the lock split
# must actually scale). On fewer cores the speedup gate is skipped — shard
# counts tie when every shard shares one core — and says so.
BENCH5="$TMP/bench5.json"
"$BIN" bench -quick -note "serve-smoke shard scaling" -o "$BENCH5"
row_ns() {
	awk -F': ' -v name="$1" '
		index($0, "\"" name "\"") { f = 1 }
		f && /"ns_per_op"/ { gsub(/,/, "", $2); print $2; exit }
	' "$BENCH5"
}
NS1="$(row_ns "pool/Throughput/shards=1")"
NS8="$(row_ns "pool/Throughput/shards=8")"
if [ -z "$NS1" ] || [ -z "$NS8" ]; then
	echo "serve-smoke: bench snapshot missing pool/Throughput rows" >&2
	exit 1
fi
if ! awk -v a="$NS8" -v b="$NS1" 'BEGIN{exit !(a <= 2*b)}'; then
	echo "serve-smoke: shards=8 admission ($NS8 ns/op) is worse than 2x shards=1 ($NS1 ns/op)" >&2
	exit 1
fi
CPUS="$( (nproc 2>/dev/null || getconf _NPROCESSORS_ONLN) | head -n1)"
if [ "${CPUS:-1}" -ge 4 ]; then
	if ! awk -v a="$NS8" -v b="$NS1" 'BEGIN{exit !(2*a <= b)}'; then
		echo "serve-smoke: shards=8 ($NS8 ns/op) is not >=2x faster than shards=1 ($NS1 ns/op) on $CPUS CPUs" >&2
		exit 1
	fi
	echo "serve-smoke: shard scaling shards=1 $NS1 ns/op -> shards=8 $NS8 ns/op (>=2x gate on $CPUS CPUs)"
else
	echo "serve-smoke: shard scaling speedup gate skipped ($CPUS CPU: shards share one core); non-regression held (shards=1 $NS1 ns/op, shards=8 $NS8 ns/op)"
fi

echo "serve-smoke: ok (287 + 37 requests, 24 injected faults detected, 18 bad programs screened out, 8 cancels + 4 deadlines reconciled, 267 + 21 guard-free sites with zero proof invalidations, tag residency >=10x under flat, 12 temporal corpus programs flagged with 3 policy rejections, 128 requests reconciled exactly across 8 shards, cluster of 2 drained under the p99 SLO, clean shutdown)"
