#!/bin/sh
# redteam_smoke.sh — end-to-end gate for the adversarial red-team layer
# (make redteam-smoke).
#
# Two stages:
#
#  1. Offline campaign: `mte4jni redteam` runs the full attack corpus
#     (brute-force sweeps, async damage windows, GC-scan races, the §2.3
#     guarded-copy blind-spot exploits) against every scheme. The command
#     self-gates — it exits nonzero when the empirical brute-force
#     detection probability drifts from the analytic 15/16-per-probe model
#     or a blind-spot exploit lands as a silent undetected success — so a
#     zero exit already certifies the coverage report. The greps below only
#     pin the headline facts into this log.
#
#  2. Serving tier under attack: `mte4jni serve` with the escalating
#     defense enabled (throttle after 2 detected faults, quarantine after
#     4), driven by `mte4jni load -attack-rate`. The load generator
#     replicates the escalation state machine client-side and exits nonzero
#     unless every verdict (200-detected / throttled / 429-refused) and
#     every /metrics delta (attack_probes, detections, throttled, reseeds,
#     tenants_quarantined) reconciles exactly with what it sent.
set -eu

GO="${GO:-go}"
TMP="$(mktemp -d)"
BIN="$TMP/mte4jni"
ADDR_FILE="$TMP/addr"
LOG="$TMP/serve.log"
REPORT="$TMP/redteam.json"
SERVE_PID=""

cleanup() {
	if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
		kill "$SERVE_PID" 2>/dev/null || true
		wait "$SERVE_PID" 2>/dev/null || true
	fi
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$BIN" ./cmd/mte4jni

# --- Stage 1: offline campaign ----------------------------------------------
# 24 trials per (attack, scheme) pair is enough for the randomized rows to
# sit within the default 5% tolerance of 15/16 while keeping this fast; the
# sequential rows are checked for exact equality regardless of trial count.
"$BIN" redteam -trials 24 -seed 1 >"$REPORT"

# The command exiting 0 means rep.Pass — but pin the two headline gates
# explicitly so a report-shape regression can't silently weaken the check.
for want in '"pass": true' '"blind_spots_accounted": true'; do
	if ! grep -q "$want" "$REPORT"; then
		echo "redteam-smoke: campaign report missing $want:" >&2
		cat "$REPORT" >&2
		exit 1
	fi
done
# The sequential 16-guess sweep detects exactly 15 of 16 probes — zero
# variance, so its detection probability is the literal 0.9375.
if ! grep -q '"detection_probability": 0.9375' "$REPORT"; then
	echo "redteam-smoke: no brute-force row at the exact 15/16 rate:" >&2
	cat "$REPORT" >&2
	exit 1
fi

# --- Stage 2: serving tier under attack -------------------------------------
"$BIN" serve -addr 127.0.0.1:0 -addr-file "$ADDR_FILE" -sessions 4 -heap-mb 2 \
	-attack-delay-threshold 2 -attack-quarantine-threshold 4 \
	-attack-delay 200us >"$LOG" 2>&1 &
SERVE_PID=$!

i=0
while [ ! -s "$ADDR_FILE" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "redteam-smoke: server never published its address" >&2
		cat "$LOG" >&2
		exit 1
	fi
	if ! kill -0 "$SERVE_PID" 2>/dev/null; then
		echo "redteam-smoke: server exited during startup" >&2
		cat "$LOG" >&2
		exit 1
	fi
	sleep 0.1
done
URL="http://$(cat "$ADDR_FILE")"

# 40 requests, every 3rd an attack probe from tenant "redteam" (13 attacks).
# With thresholds 2/4: attacks 1-2 admitted, 3-4 throttled then admitted
# (all 4 detected, faulting, quarantining their session), attacks 5-13
# refused with 429. The generator predicts each verdict from its own replica
# of the escalation ladder and reconciles the /metrics deltas exactly.
"$BIN" load -url "$URL" -n 40 -c 1 -attack-rate 3 \
	-attack-delay-threshold 2 -attack-quarantine-threshold 4

# Cross-check the cumulative counters when curl is available (the per-run
# delta reconciliation above already gated the plumbing): 31 executed
# requests (40 - 9 refused), 4 detected probes = 4 faults = 4 quarantined
# sessions, 2 throttled admissions, 2 tier crossings (reseeds), 1 tenant
# quarantined, and a detection probability of exactly 1 for the serving
# probe's deterministic forged store.
if command -v curl >/dev/null 2>&1; then
	METRICS="$TMP/metrics.json"
	curl -fsS "$URL/metrics" >"$METRICS"
	for want in '"requests_total":31' '"attack_probes_total":4' \
		'"detections_total":4' '"faults_total":4' '"quarantined":4' \
		'"throttled_total":2' '"reseeds_total":2' \
		'"tenants_quarantined_total":1' \
		'"detection_probability":1' '"probes_to_detect_buckets"'; do
		if ! grep -q "$want" "$METRICS"; then
			echo "redteam-smoke: /metrics missing $want:" >&2
			cat "$METRICS" >&2
			exit 1
		fi
	done
fi

kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
	echo "redteam-smoke: server did not shut down cleanly" >&2
	cat "$LOG" >&2
	exit 1
fi
SERVE_PID=""

echo "redteam-smoke: ok (campaign passed the 15/16 model + blind-spot gates; 13 attacks -> 4 detected, 2 throttled, 9 refused, 2 reseeds reconciled exactly)"
