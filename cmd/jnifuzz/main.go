// Command jnifuzz runs the differential fuzzer: random JNI operation
// sequences executed under each protection scheme and validated against an
// architectural oracle (see internal/fuzz). A mismatch prints the seed and
// step needed to replay it.
//
//	jnifuzz -seeds 200 -steps 1000 [-scheme mte4jni-sync] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"

	"mte4jni/internal/fuzz"
)

func main() {
	seeds := flag.Int("seeds", 100, "number of consecutive seeds to run per scheme")
	steps := flag.Int("steps", 1000, "operations per run")
	firstSeed := flag.Int64("seed", 1, "first seed (replay a failure by passing its seed with -seeds 1)")
	schemeName := flag.String("scheme", "", "restrict to one scheme (no-protection, guarded-copy, mte4jni-sync)")
	flag.Parse()

	schemes := fuzz.Schemes()
	if *schemeName != "" {
		schemes = nil
		for _, s := range fuzz.Schemes() {
			if s.String() == *schemeName {
				schemes = []fuzz.SchemeID{s}
			}
		}
		if schemes == nil {
			fmt.Fprintf(os.Stderr, "jnifuzz: unknown scheme %q\n", *schemeName)
			os.Exit(2)
		}
	}

	failures := 0
	for _, scheme := range schemes {
		var total fuzz.Report
		for seed := *firstSeed; seed < *firstSeed+int64(*seeds); seed++ {
			rep, err := fuzz.Run(seed, *steps, scheme)
			if err != nil {
				failures++
				fmt.Fprintf(os.Stderr, "FAIL %v\n", err)
				continue
			}
			total.Steps += rep.Steps
			total.Allocs += rep.Allocs
			total.Gets += rep.Gets
			total.Releases += rep.Releases
			total.InBounds += rep.InBounds
			total.OOBs += rep.OOBs
			total.FaultsObserved += rep.FaultsObserved
		}
		fmt.Printf("%-14s %d runs: %d steps, %d allocs, %d gets, %d releases, %d in-bounds, %d OOB accesses, %d detections\n",
			scheme, *seeds, total.Steps, total.Allocs, total.Gets, total.Releases, total.InBounds, total.OOBs, total.FaultsObserved)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "jnifuzz: %d oracle violations\n", failures)
		os.Exit(1)
	}
	fmt.Println("jnifuzz: all runs consistent with the oracle")
}
