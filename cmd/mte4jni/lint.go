package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mte4jni/internal/analysis"
	"mte4jni/internal/fuzz"
	"mte4jni/internal/interp"
)

// runLint implements `mte4jni lint`: static analysis of bytecode program
// files (see internal/analysis/program.go for the JSON format), with
// optional dynamic cross-checking against an actual MTE4JNI+Sync run.
func runLint(args []string) error {
	flags := flag.NewFlagSet("lint", flag.ExitOnError)
	disasm := flags.Bool("disasm", false, "print the annotated disassembly of each program")
	dynamic := flags.Bool("dynamic", false, "also execute under MTE4JNI+Sync and cross-check the static verdict (differential oracle)")
	seed := flags.Int64("seed", 1, "vm seed for -dynamic")
	flags.Parse(args)
	if flags.NArg() == 0 {
		return fmt.Errorf("lint: no inputs (expected .json program files or directories)")
	}

	var files []string
	for _, p := range flags.Args() {
		info, err := os.Stat(p)
		if err != nil {
			return err
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		err = filepath.WalkDir(p, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".json") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return fmt.Errorf("lint: no .json program files found")
	}

	var errs, warns int
	count := func(diags []analysis.Diagnostic, file string) {
		for _, d := range diags {
			d.File = file
			fmt.Println(d)
			switch d.Sev {
			case analysis.SevError:
				errs++
			case analysis.SevWarning:
				warns++
			}
		}
	}

	for _, f := range files {
		p, err := analysis.LoadProgram(f)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		res := p.Analyze(f)
		count(res.Diags, f)
		fmt.Printf("%s: verdict: %s\n", f, res.Verdict)
		if *disasm {
			// Each heap-access PC carries its elision decision next to the
			// analyzer's findings: "elide: <proof>" where the guard is
			// statically discharged, "checked: <why not>" everywhere else.
			notes := analysis.Annotations(res.Diags)
			for pc, ns := range analysis.ElideAnnotations(res) {
				notes[pc] = append(notes[pc], ns...)
			}
			// Temporally exposed call sites carry their window class too:
			// "window: <class>: <reason>".
			for pc, ns := range analysis.TemporalAnnotations(res) {
				notes[pc] = append(notes[pc], ns...)
			}
			fmt.Print(interp.DisassembleAnnotated(p.Method, notes))
		}
		if *dynamic {
			dr, err := fuzz.Differential(p, *seed)
			if err != nil {
				// Includes *fuzz.Disagreement: a soundness bug in the
				// analyzer or the protection — the loudest possible finding.
				return fmt.Errorf("lint: %s: %w", f, err)
			}
			outcome := fmt.Sprintf("completed, returned %d", dr.Outcome.Ret)
			switch {
			case dr.Outcome.Faulted():
				outcome = "faulted: " + dr.Outcome.Fault.Error()
			case dr.Outcome.Err != nil:
				outcome = "threw: " + dr.Outcome.Err.Error()
			}
			fmt.Printf("%s: dynamic: %s\n", f, outcome)
			count(analysis.LintTrace(dr.Outcome.Trace), f)
		}
	}
	if errs > 0 {
		return fmt.Errorf("lint: %d error(s), %d warning(s) in %d program(s)", errs, warns, len(files))
	}
	fmt.Printf("lint: ok: %d program(s), %d warning(s)\n", len(files), warns)
	return nil
}
