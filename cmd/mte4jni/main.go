// Command mte4jni regenerates every table and figure of the MTE4JNI paper's
// evaluation (CGO '25) on the simulated substrate, plus the ablations
// described in DESIGN.md.
//
// Usage:
//
//	mte4jni effect                  # §5.2 / Figures 3-4: detection matrix + crash reports
//	mte4jni fig5 [-minpow -maxpow]  # §5.3.1: single-thread JNI overhead sweep
//	mte4jni fig6 [-threads -iters]  # §5.3.2: multi-thread locking comparison
//	mte4jni geekbench [-cores N]    # §5.4 / Figures 7-8: workload suite
//	mte4jni table1                  # Table 1: the protected JNI surface
//	mte4jni table2                  # Table 2: environment configuration
//	mte4jni ablate-align            # Extra A: §4.1 alignment hazard
//	mte4jni ablate-k                # Extra B: hash-table count sweep
//	mte4jni ablate-tags             # Extra C: tag collision probability
//	mte4jni lint file.json...       # static analysis of bytecode programs
//	mte4jni bench                   # benchmark-snapshot suite (BENCH_*.json)
//	mte4jni serve                   # multi-tenant serving daemon (HTTP/JSON)
//	mte4jni load                    # concurrent load generator against serve
//	mte4jni redteam                 # offline adversarial campaign (JSON coverage report)
//	mte4jni all                     # everything above, in order
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mte4jni"
)

// emitJSON pretty-prints v for machine consumption.
func emitJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "effect":
		err = runEffect(args)
	case "fig5":
		err = runFig5(args)
	case "fig6":
		err = runFig6(args)
	case "geekbench":
		err = runGeekbench(args)
	case "table1":
		err = runTable1(args)
	case "table2":
		err = runTable2(args)
	case "ablate-align":
		err = runAblateAlign(args)
	case "ablate-k":
		err = runAblateK(args)
	case "ablate-tags":
		err = runAblateTags(args)
	case "lint":
		err = runLint(args)
	case "bench":
		err = runBench(args)
	case "serve":
		err = runServe(args)
	case "load":
		err = runLoad(args)
	case "redteam":
		err = runRedteam(args)
	case "all":
		err = runAll()
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mte4jni: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mte4jni:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `mte4jni — reproduce the tables and figures of the MTE4JNI paper (CGO '25)

commands:
  effect         §5.2 effectiveness matrix with Figure 4-style crash reports
  fig5           §5.3.1 single-thread JNI overhead (normalized, 2^1..2^12 ints)
  fig6           §5.3.2 multi-thread locking comparison (same/different arrays)
  geekbench      §5.4 GeekBench-style suite (Figure 7 with -cores 1, Figure 8 with -cores N)
  table1         Table 1: JNI interfaces returning raw pointers
  table2         Table 2: experimental environment configuration
  ablate-align   DESIGN.md Extra A: §4.1 heap-alignment hazard
  ablate-k       DESIGN.md Extra B: hash-table count sweep
  ablate-tags    DESIGN.md Extra C: 4-bit tag collision probability
  lint           static analysis of bytecode program files (-disasm, -dynamic)
  bench          benchmark-snapshot suite (-quick, -o file, -parse benchtext, -diff a b)
  serve          multi-tenant serving daemon: session pool behind an HTTP/JSON API
  load           concurrent load generator for serve (-n, -c, -fault-every, -attack-rate)
  redteam        offline adversarial campaign: attack corpus x schemes -> JSON coverage report
  all            run everything with default settings`)
}

// runEffect prints the detection matrix and, optionally, the full crash
// reports behind it.
func runEffect(args []string) error {
	fs := flag.NewFlagSet("effect", flag.ExitOnError)
	reports := fs.Bool("reports", true, "print the logcat-style crash reports (Figure 4)")
	asJSON := fs.Bool("json", false, "emit the result as JSON")
	fs.Parse(args)

	m, err := mte4jni.RunEffectiveness()
	if err != nil {
		return err
	}
	if *asJSON {
		return emitJSON(m)
	}
	fmt.Println(m.Summary())
	if !*reports {
		return nil
	}
	// Figure 4 proper: the three reports for the OOB write scenario.
	for i, sc := range m.Scenarios {
		if sc != mte4jni.ScenarioOOBWrite {
			continue
		}
		for j, scheme := range m.Schemes {
			d := m.Results[i][j]
			if !d.Detected {
				continue
			}
			fmt.Printf("--- Figure 4 crash report under %s (%s) ---\n%s\n", scheme, d.Where, d.Report)
		}
	}
	return nil
}

func runFig5(args []string) error {
	fs := flag.NewFlagSet("fig5", flag.ExitOnError)
	minPow := fs.Int("minpow", 1, "smallest array length exponent")
	maxPow := fs.Int("maxpow", 12, "largest array length exponent")
	reps := fs.Int("reps", 11, "timing repetitions (median reported)")
	asJSON := fs.Bool("json", false, "emit the result as JSON")
	fs.Parse(args)

	res, err := mte4jni.RunFig5(mte4jni.Fig5Options{MinPow: *minPow, MaxPow: *maxPow, Reps: *reps})
	if err != nil {
		return err
	}
	if *asJSON {
		return emitJSON(res)
	}
	fmt.Println(res.Figure())
	fmt.Printf("average slowdown: guarded copy %.2fx, MTE4JNI+Sync %.2fx, MTE4JNI+Async %.2fx\n",
		res.Average[mte4jni.GuardedCopy], res.Average[mte4jni.MTESync], res.Average[mte4jni.MTEAsync])
	fmt.Println("(paper, on-device: 26.58x, 2.36x, 2.24x)")
	return nil
}

func runFig6(args []string) error {
	fs := flag.NewFlagSet("fig6", flag.ExitOnError)
	threads := fs.Int("threads", 64, "concurrent native threads")
	iters := fs.Int("iters", 10000, "acquire/read/release iterations per thread")
	arrayLen := fs.Int("arraylen", 1024, "array length in ints")
	reps := fs.Int("reps", 5, "timing repetitions (median reported)")
	asJSON := fs.Bool("json", false, "emit the result as JSON")
	fs.Parse(args)

	res, err := mte4jni.RunFig6(mte4jni.Fig6Options{
		Threads: *threads, Iters: *iters, ArrayLen: *arrayLen, Reps: *reps,
	})
	if err != nil {
		return err
	}
	if *asJSON {
		return emitJSON(res)
	}
	fmt.Println(res.Figure())
	fmt.Println(res.ContentionTable())
	fmt.Println("(paper, on-device, same array: two-tier 1.21x, global 1.39x, guarded 32.9x;")
	fmt.Println(" different arrays: two-tier 1.21x, global 2.20x, guarded 34.0x)")
	return nil
}

func runGeekbench(args []string) error {
	fs := flag.NewFlagSet("geekbench", flag.ExitOnError)
	cores := fs.Int("cores", 1, "concurrent copies per workload (1 = Figure 7, NumCPU = Figure 8)")
	reps := fs.Int("reps", 5, "timing repetitions (median reported)")
	small := fs.Bool("small", false, "use the small (test-sized) workload scale")
	asJSON := fs.Bool("json", false, "emit the result as JSON")
	fs.Parse(args)

	scale := mte4jni.ScaleDefault
	if *small {
		scale = mte4jni.ScaleSmall
	}
	if *cores < 1 {
		*cores = mte4jni.NumCores()
	}
	res, err := mte4jni.RunGeekbench(mte4jni.GeekbenchOptions{Cores: *cores, Scale: scale, Reps: *reps})
	if err != nil {
		return err
	}
	if *asJSON {
		return emitJSON(res)
	}
	fmt.Println(res.Figure())
	fmt.Printf("overall degradation (geomean): guarded copy %.2f%%, MTE4JNI+Sync %.2f%%, MTE4JNI+Async %.2f%%\n",
		res.Degradation[mte4jni.GuardedCopy], res.Degradation[mte4jni.MTESync], res.Degradation[mte4jni.MTEAsync])
	if *cores == 1 {
		fmt.Println("(paper, on-device single-core: 5.90%, 5.33%, 1.13%)")
	} else {
		fmt.Println("(paper, on-device multi-core: 13.50%, 5.12%, 1.55%)")
	}
	return nil
}

func runAblateAlign(args []string) error {
	res, err := mte4jni.RunAlignmentAblation(nil)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	fmt.Printf("missed adjacent-object OOB writes: align 8 -> %d, align 16 -> %d (of %d sizes)\n",
		res.MissedByAlignment[8], res.MissedByAlignment[16], len(res.Sizes))
	return nil
}

func runAblateK(args []string) error {
	fs := flag.NewFlagSet("ablate-k", flag.ExitOnError)
	threads := fs.Int("threads", 64, "concurrent native threads")
	iters := fs.Int("iters", 2000, "iterations per thread")
	fs.Parse(args)

	res, err := mte4jni.RunHashTableAblation(nil, mte4jni.Fig6Options{
		Threads: *threads, Iters: *iters, ArrayLen: 1024, Reps: 3,
	})
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}

func runAblateTags(args []string) error {
	fs := flag.NewFlagSet("ablate-tags", flag.ExitOnError)
	trials := fs.Int("trials", 1500, "adjacent pairs per configuration")
	fs.Parse(args)

	res, err := mte4jni.RunTagCollisionAblation(*trials)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}

func runAll() error {
	steps := []struct {
		name string
		fn   func() error
	}{
		{"table2", func() error { return runTable2(nil) }},
		{"table1", func() error { return runTable1(nil) }},
		{"effect", func() error { return runEffect([]string{"-reports=true"}) }},
		{"fig5", func() error { return runFig5(nil) }},
		{"fig6", func() error { return runFig6([]string{"-threads", "64", "-iters", "2000"}) }},
		{"geekbench (fig7)", func() error { return runGeekbench([]string{"-cores", "1"}) }},
		{"geekbench (fig8)", func() error { return runGeekbench([]string{"-cores", "0"}) }},
		{"ablate-align", func() error { return runAblateAlign(nil) }},
		{"ablate-k", func() error { return runAblateK([]string{"-threads", "16", "-iters", "1000"}) }},
		{"ablate-tags", func() error { return runAblateTags(nil) }},
	}
	for _, s := range steps {
		fmt.Printf("\n================ %s ================\n\n", s.name)
		if err := s.fn(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	return nil
}
