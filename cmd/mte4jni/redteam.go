package main

import (
	"flag"
	"fmt"

	"mte4jni/internal/redteam"
)

// runRedteam runs the offline adversarial campaign: the full adaptive
// attack corpus (tag brute-forcing, async damage windows, GC-scan races,
// the §2.3 guarded-copy blind-spot exploits) against every protection
// scheme, reduced to a JSON coverage report — detection probability per
// attack class × scheme, probes-to-detection, and the analytic-model
// checks for the brute-force rows. Exit status is the report's own
// verdict: nonzero when the empirical brute-force detection probability
// drifts from the 15/16-per-probe model or a blind-spot exploit ends as a
// silent undetected success.
func runRedteam(args []string) error {
	fs := flag.NewFlagSet("redteam", flag.ExitOnError)
	trials := fs.Int("trials", 64, "trials per (attack, scheme) pair")
	seed := fs.Int64("seed", 1, "campaign seed (per-pair harness seeds derive from it)")
	maxProbes := fs.Int("max-probes", 16, "per-trial probe budget for the sweeping strategies")
	tolerance := fs.Float64("tolerance", 0.05, "acceptable |empirical - 15/16| deviation for the randomized brute-force rows")
	heapMB := fs.Int("heap-mb", 1, "per-harness Java heap size in MiB")
	fs.Parse(args)

	rep, err := redteam.Run(redteam.Config{
		Trials:    *trials,
		Seed:      *seed,
		MaxProbes: *maxProbes,
		Tolerance: *tolerance,
		HeapSize:  uint64(*heapMB) << 20,
	})
	if err != nil {
		return err
	}
	if err := emitJSON(rep); err != nil {
		return err
	}
	if !rep.Pass {
		return fmt.Errorf("redteam: campaign failed its gates (blind spots accounted: %v; see bruteforce_model_checks)",
			rep.BlindSpotsAccounted)
	}
	return nil
}
