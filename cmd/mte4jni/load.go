package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"mte4jni/internal/analysis"
	"mte4jni/internal/pool"
	"mte4jni/internal/server"
)

// runLoad is the concurrent load generator for `mte4jni serve`. It fires n
// requests at the daemon across c connections — the canned safe probe, a
// built-in workload, every -fault-every-th request the canned
// deliberately-faulting probe, and every -reject-rate-th request a known
// provably-faulting inline program that the static admission screen must
// turn away with 422 — then prints a latency/fault summary and reconciles
// its own counts against the change in the server's /metrics over the run.
// Any verdict mismatch (a fault where none was injected, a missing fault
// where one was, a missing or malformed 422 rejection, a non-200 response,
// or metrics that do not add up) makes it exit nonzero.
func runLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8321", "server base URL")
	n := fs.Int("n", 50, "total requests")
	c := fs.Int("c", 8, "concurrent workers")
	scheme := fs.String("scheme", "sync", "protection scheme for every request (none, guarded, sync, async)")
	workload := fs.String("workload", "", "run this built-in workload instead of the canned safe probe")
	iters := fs.Int("iters", 1, "workload iterations per request")
	faultEvery := fs.Int("fault-every", 0, "make every k-th request the deliberately-faulting OOB probe (0 = never)")
	rejectRate := fs.Int("reject-rate", 0, "make every k-th request a known-bad inline program the admission screen must reject with 422 (0 = never; wins over -fault-every)")
	noReconcile := fs.Bool("no-reconcile", false, "skip the /metrics reconciliation (server is shared with other clients)")
	fs.Parse(args)
	if _, err := server.ParseScheme(*scheme); err != nil {
		return err
	}
	if *n <= 0 || *c <= 0 {
		return fmt.Errorf("load: -n and -c must be positive")
	}

	// Marshal the reject corpus once; workers round-robin through it.
	var badProgs [][]byte
	for _, name := range pool.BadProgramNames {
		raw, err := analysis.MarshalProgram(pool.BadProgram(name))
		if err != nil {
			return fmt.Errorf("load: marshal %s: %w", name, err)
		}
		badProgs = append(badProgs, raw)
	}

	client := &http.Client{Timeout: 60 * time.Second}

	// Snapshot the server counters up front: reconciliation compares the
	// *change* over this run, so it works against warm servers too.
	var before server.MetricsResponse
	if !*noReconcile {
		if err := getJSON(client, *url+"/metrics", &before); err != nil {
			return fmt.Errorf("load: fetching /metrics baseline: %w", err)
		}
	}

	outcomes := make([]loadOutcome, *n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				req := server.RunRequest{Scheme: *scheme}
				reject := *rejectRate > 0 && (i+1)%*rejectRate == 0
				injected := !reject && *faultEvery > 0 && (i+1)%*faultEvery == 0
				switch {
				case reject:
					req.Program = badProgs[i%len(badProgs)]
				case injected:
					req.Canned = "oob"
				case *workload != "":
					req.Workload = *workload
					req.Iterations = *iters
				default:
					req.Canned = "safe"
				}
				outcomes[i] = fire(client, *url, req, injected, reject)
			}
		}()
	}
	for i := 0; i < *n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)

	// Aggregate.
	var ok, faulted, injected, rejected, failed int
	lats := make([]time.Duration, 0, *n)
	for i, o := range outcomes {
		if o.err != nil {
			failed++
			if failed <= 5 {
				fmt.Fprintf(os.Stderr, "load: request %d: %v\n", i, o.err)
			}
			continue
		}
		lats = append(lats, o.latency)
		switch {
		case o.rejected:
			rejected++
		case o.faulted:
			faulted++
		default:
			ok++
		}
		if o.injected {
			injected++
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		idx := int(p * float64(len(lats)-1))
		return lats[idx]
	}
	fmt.Printf("load: %d requests over %d workers in %v (%.0f req/s)\n",
		*n, *c, wall.Round(time.Millisecond), float64(*n)/wall.Seconds())
	fmt.Printf("  ok=%d faulted=%d (injected %d) rejected=%d transport-errors=%d\n",
		ok, faulted, injected, rejected, failed)
	if len(lats) > 0 {
		fmt.Printf("  latency: p50=%v p95=%v p99=%v max=%v\n",
			pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	}

	if failed > 0 {
		return fmt.Errorf("load: %d requests failed at the transport/HTTP layer", failed)
	}
	if faulted != injected {
		return fmt.Errorf("load: fault verdicts off: %d faults observed, %d injected", faulted, injected)
	}

	if !*noReconcile {
		var after server.MetricsResponse
		if err := getJSON(client, *url+"/metrics", &after); err != nil {
			return fmt.Errorf("load: fetching /metrics: %w", err)
		}
		dRequests := after.RequestsTotal - before.RequestsTotal
		dFaults := after.FaultsTotal - before.FaultsTotal
		dQuarantined := after.Pool.Quarantined - before.Pool.Quarantined
		dScreened := after.ScreenedTotal - before.ScreenedTotal
		dRejected := after.ScreenRejectedTotal - before.ScreenRejectedTotal
		dCacheHits := after.ScreenCacheHits - before.ScreenCacheHits
		fmt.Printf("  server: +requests=%d +faults=%d +screened=%d +rejected=%d +cache-hits=%d +quarantined=%d\n",
			dRequests, dFaults, dScreened, dRejected, dCacheHits, dQuarantined)
		// A rejected program never becomes a request: the screen turns it
		// away before a session is leased or a request observed.
		if dRequests != uint64(*n-rejected) || dFaults != uint64(faulted) {
			return fmt.Errorf("load: metrics do not reconcile: server saw +%d requests / +%d faults, client expected +%d / +%d",
				dRequests, dFaults, *n-rejected, faulted)
		}
		if dQuarantined != uint64(faulted) {
			return fmt.Errorf("load: %d faults but +%d sessions quarantined", faulted, dQuarantined)
		}
		if dScreened != uint64(rejected) || dRejected != uint64(rejected) {
			return fmt.Errorf("load: screening counters do not reconcile: server screened +%d / rejected +%d, client sent %d bad programs",
				dScreened, dRejected, rejected)
		}
		// All but the first (cold) screening of each distinct bad program
		// must be verdict-cache hits.
		if rejected > 0 && dCacheHits+uint64(len(badProgs)) < uint64(rejected) {
			return fmt.Errorf("load: screen cache ineffective: +%d hits for %d rejections over %d distinct programs",
				dCacheHits, rejected, len(badProgs))
		}
	}
	return nil
}

// loadOutcome is one request's client-side classification.
type loadOutcome struct {
	latency  time.Duration
	faulted  bool
	injected bool
	rejected bool
	err      error
}

// fire sends one /run request and classifies the outcome. A response is an
// error unless its verdict matches what was asked for: injected requests
// must come back 200 with a structured fault report, reject submissions
// must come back 422 with a structured screen verdict, and clean requests
// must do neither.
func fire(client *http.Client, base string, req server.RunRequest, injected, reject bool) (o loadOutcome) {
	o.injected = injected
	body, err := json.Marshal(req)
	if err != nil {
		o.err = err
		return o
	}
	start := time.Now()
	resp, err := client.Post(base+"/run", "application/json", bytes.NewReader(body))
	o.latency = time.Since(start)
	if err != nil {
		o.err = err
		return o
	}
	defer resp.Body.Close()
	if reject {
		o.rejected = resp.StatusCode == http.StatusUnprocessableEntity
		if !o.rejected {
			o.err = fmt.Errorf("bad program not rejected: status %d", resp.StatusCode)
			return o
		}
		var rej server.RejectResponse
		if err := json.NewDecoder(resp.Body).Decode(&rej); err != nil {
			o.err = fmt.Errorf("decoding 422 body: %w", err)
			return o
		}
		v := rej.Verdict
		if v == nil || !v.Rejected() || v.PC < 0 || v.Native == "" || len(v.Provenance) == 0 {
			o.err = fmt.Errorf("422 without a structured verdict: %+v", rej)
		}
		return o
	}
	var out server.RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		o.err = fmt.Errorf("decoding response (status %d): %w", resp.StatusCode, err)
		return o
	}
	if resp.StatusCode != http.StatusOK {
		o.err = fmt.Errorf("status %d", resp.StatusCode)
		return o
	}
	o.faulted = out.Fault != nil
	if injected && out.Fault == nil {
		o.err = fmt.Errorf("injected fault came back clean (session %s)", out.Session)
	}
	if !injected && out.Fault != nil {
		o.err = fmt.Errorf("unexpected fault on session %s: %s", out.Session, out.Fault.Signature)
	}
	if !injected && out.Error != "" {
		o.err = fmt.Errorf("session %s: %s", out.Session, out.Error)
	}
	return o
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
