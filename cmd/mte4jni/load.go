package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"math/rand"

	"mte4jni/internal/analysis"
	"mte4jni/internal/pool"
	"mte4jni/internal/redteam"
	"mte4jni/internal/report"
	"mte4jni/internal/server"
)

// runLoad is the concurrent load generator for `mte4jni serve`. It fires n
// requests at the daemon across c connections — the canned safe probe, a
// built-in workload, every -fault-every-th request the canned
// deliberately-faulting probe, and every -reject-rate-th request a known
// provably-faulting inline program that the static admission screen must
// turn away with 422 — then prints a latency/fault summary and reconciles
// its own counts against the change in the server's /metrics over the run.
// Any verdict mismatch (a fault where none was injected, a missing fault
// where one was, a missing or malformed 422 rejection, a non-200 response,
// or metrics that do not add up) makes it exit nonzero.
func runLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8321", "server base URL")
	n := fs.Int("n", 50, "total requests")
	c := fs.Int("c", 8, "concurrent workers")
	scheme := fs.String("scheme", "sync", "protection scheme for every request (none, guarded, sync, async)")
	workload := fs.String("workload", "", "run this built-in workload instead of the canned safe probe")
	iters := fs.Int("iters", 1, "workload iterations per request")
	faultEvery := fs.Int("fault-every", 0, "make every k-th request the deliberately-faulting OOB probe (0 = never)")
	rejectRate := fs.Int("reject-rate", 0, "make every k-th request a known-bad inline program the admission screen must reject with 422 (0 = never; wins over -fault-every)")
	cancelRate := fs.Int("cancel-rate", 0, "make every k-th request a runaway spin program whose connection the client abandons after -cancel-after (0 = never; the server must count it canceled_total and recycle the lease)")
	cancelAfter := fs.Duration("cancel-after", 50*time.Millisecond, "how long a -cancel-rate request runs before the client disconnects")
	deadlineRate := fs.Int("deadline-rate", 0, "make every k-th request a runaway spin program the server's -run-timeout must cut off with 504 (0 = never)")
	attackRate := fs.Int("attack-rate", 0, "make every k-th request the canned red-team attack probe as tenant \"redteam\" (0 = never; requires -c 1)")
	temporalRate := fs.Int("temporal-rate", 0, "make every k-th request a red-team corpus program under its risky scheme, which the temporal screen must flag — and, for the policy-rejected shapes, 422 with the provenance chain (0 = never)")
	attackDelayThreshold := fs.Int("attack-delay-threshold", 0, "mirror of the server's -attack-delay-threshold so the client replicates the escalation state machine for exact reconciliation")
	attackQuarantineThreshold := fs.Int("attack-quarantine-threshold", 0, "mirror of the server's -attack-quarantine-threshold")
	noReconcile := fs.Bool("no-reconcile", false, "skip the /metrics reconciliation (server is shared with other clients)")
	rate := fs.Float64("rate", 0, "open-loop arrival rate in req/s: requests launch on Poisson inter-arrival times regardless of completions, the queueing discipline real traffic applies (0 = closed loop over -c workers)")
	sloP99 := fs.Duration("slo-p99", 0, "fail (exit nonzero) when the run's p99 latency exceeds this budget (0 = no SLO gate)")
	reportFile := fs.String("report", "", "write a JSON report (throughput, HDR latency percentiles, SLO verdict) to this file")
	tenantCount := fs.Int("tenants", 0, "spread requests across K tenants (load-tenant-*) so the server's affinity router exercises every shard (0 = no tenant attribution)")
	expectShards := fs.Int("expect-shards", 0, "reconcile the per-shard /metrics ledgers against a server running -shards=N: shard leases must sum to created+reused exactly, sheds to rejected, and — with -tenants set — no shard may serve more than 2x the mean (tenants are picked shard-affine so uniform load is uniform by construction)")
	fs.Parse(args)
	parsedScheme, err := server.ParseScheme(*scheme)
	if err != nil {
		return err
	}
	if *n <= 0 || *c <= 0 {
		return fmt.Errorf("load: -n and -c must be positive")
	}
	if *rate > 0 && *attackRate > 0 {
		return fmt.Errorf("load: -rate (open loop) and -attack-rate (order-dependent escalation) cannot be combined")
	}
	if *expectShards < 0 || (*expectShards > 0 && *tenantCount > 0 && *tenantCount%*expectShards != 0) {
		return fmt.Errorf("load: -tenants must be a multiple of -expect-shards for an exactly uniform spread")
	}
	// The escalation state machine is sequential by nature — which probe
	// trips which tier depends on strict request order — so attack injection
	// demands a single worker.
	if *attackRate > 0 && *c != 1 {
		return fmt.Errorf("load: -attack-rate requires -c 1 (escalation accounting is order-dependent)")
	}
	// The attack probe is detected exactly when the scheme is an MTE one.
	expectDetect := parsedScheme.MTE()

	// Tenant spread: K distinct tenants round-robined over the requests.
	// When -expect-shards is set the names are picked shard-affine — probe
	// the shared affinity hash (the same FNV the server routes with) until
	// K/N tenants home on each shard — so a uniform request spread is a
	// uniform shard spread by construction, and the 2x-mean balance check
	// below cannot be failed by hash luck.
	var tenantNames []string
	if *tenantCount > 0 {
		if *expectShards > 0 {
			for shard := 0; shard < *expectShards; shard++ {
				need := *tenantCount / *expectShards
				for probe := 0; need > 0; probe++ {
					name := fmt.Sprintf("load-tenant-%d", probe)
					if int(pool.AffinityKey(name, parsedScheme.String())%uint64(*expectShards)) == shard {
						tenantNames = append(tenantNames, name)
						need--
					}
					if probe > 1<<20 {
						return fmt.Errorf("load: no tenant name hashes to shard %d", shard)
					}
				}
			}
		} else {
			for i := 0; i < *tenantCount; i++ {
				tenantNames = append(tenantNames, fmt.Sprintf("load-tenant-%d", i))
			}
		}
	}

	// Marshal the reject corpus once; workers round-robin through it.
	var badProgs [][]byte
	for _, name := range pool.BadProgramNames {
		raw, err := analysis.MarshalProgram(pool.BadProgram(name))
		if err != nil {
			return fmt.Errorf("load: marshal %s: %w", name, err)
		}
		badProgs = append(badProgs, raw)
	}

	// The temporal corpus: four red-team attack shapes as inline programs,
	// each submitted under the scheme whose checker is exposed to it. Three
	// are provable faults the admission screen 422s (temporal findings riding
	// along in the verdict); the lost update is admitted by the fault screen
	// and rejected by the temporal policy — the server must run with the
	// default -temporal-policy reject for the script to hold.
	var temporalProgs []temporalEntry
	if *temporalRate > 0 {
		byName := make(map[string]redteam.CorpusProgram)
		for _, cp := range redteam.CorpusPrograms() {
			byName[cp.Name] = cp
		}
		for _, name := range []string{
			"async-window/damage", "gc-race/scan-window",
			"guardedcopy/oob-read", "guardedcopy/lost-update",
		} {
			cp, ok := byName[name]
			if !ok {
				return fmt.Errorf("load: temporal corpus missing %s", name)
			}
			raw, err := analysis.MarshalProgram(cp.Program)
			if err != nil {
				return fmt.Errorf("load: marshal %s: %w", name, err)
			}
			temporalProgs = append(temporalProgs, temporalEntry{
				raw: raw, scheme: cp.Scheme, class: string(cp.WantClass),
				policyReject: name == "guardedcopy/lost-update",
			})
		}
	}

	// The runaway probe for cancel/deadline injection: a pure countdown loop
	// the admission screen admits but no sane budget lets finish.
	var spinProg []byte
	if *cancelRate > 0 || *deadlineRate > 0 {
		raw, err := analysis.MarshalProgram(pool.SpinProgram(1 << 40))
		if err != nil {
			return fmt.Errorf("load: marshal spin program: %w", err)
		}
		spinProg = raw
	}

	client := &http.Client{Timeout: 60 * time.Second}

	// Snapshot the server counters up front: reconciliation compares the
	// *change* over this run, so it works against warm servers too.
	var before server.MetricsResponse
	if !*noReconcile {
		if err := getJSON(client, *url+"/metrics", &before); err != nil {
			return fmt.Errorf("load: fetching /metrics baseline: %w", err)
		}
	}

	outcomes := make([]loadOutcome, *n)
	var wg sync.WaitGroup
	// attackFaults is the client's replica of the server's per-tenant fault
	// count for tenant "redteam". Only touched when -attack-rate is set,
	// which forces a single worker, so plain state is race-free.
	attackFaults := 0
	doRequest := func(i int) {
		req := server.RunRequest{Scheme: *scheme}
		// Injection precedence: reject > cancel > deadline > attack >
		// fault.
		reject := *rejectRate > 0 && (i+1)%*rejectRate == 0
		temporal := !reject && *temporalRate > 0 && (i+1)%*temporalRate == 0
		canceled := !reject && !temporal && *cancelRate > 0 && (i+1)%*cancelRate == 0
		deadlined := !reject && !temporal && !canceled && *deadlineRate > 0 && (i+1)%*deadlineRate == 0
		attacked := !reject && !temporal && !canceled && !deadlined && *attackRate > 0 && (i+1)%*attackRate == 0
		injected := !reject && !temporal && !canceled && !deadlined && !attacked && *faultEvery > 0 && (i+1)%*faultEvery == 0
		var te temporalEntry
		if temporal {
			// Round-robin by injection ordinal so every corpus shape
			// gets an even share regardless of the rate.
			te = temporalProgs[((i+1) / *temporalRate - 1)%len(temporalProgs)]
		}
		switch {
		case reject:
			req.Program = badProgs[i%len(badProgs)]
		case temporal:
			req.Scheme = te.scheme
			req.Program = te.raw
		case canceled, deadlined:
			req.Program = spinProg
		case attacked:
			req.Canned = "attack"
			req.Tenant = "redteam"
		case injected:
			req.Canned = "oob"
		case *workload != "":
			req.Workload = *workload
			req.Iterations = *iters
		default:
			req.Canned = "safe"
		}
		// Attribute the request to its round-robin tenant so the
		// server's affinity router spreads the run across shards;
		// the attack probe keeps its fixed red-team identity.
		if req.Tenant == "" && len(tenantNames) > 0 {
			req.Tenant = tenantNames[i%len(tenantNames)]
		}
		switch {
		case temporal:
			outcomes[i] = fireTemporal(client, *url, req, te)
		case canceled:
			outcomes[i] = fireCancel(client, *url, req, *cancelAfter)
		case deadlined:
			outcomes[i] = fireDeadline(client, *url, req)
		case attacked:
			// Replicate the server's escalation state machine: the
			// tier in force for this admission follows from the
			// detected-fault count so far.
			expect429 := *attackQuarantineThreshold > 0 && attackFaults >= *attackQuarantineThreshold
			throttled := !expect429 && *attackDelayThreshold > 0 && attackFaults >= *attackDelayThreshold
			o := fireAttack(client, *url, req, expectDetect, expect429)
			o.throttled = throttled && o.err == nil && !o.refused
			if o.attackDetected {
				attackFaults++
			}
			outcomes[i] = o
		default:
			outcomes[i] = fire(client, *url, req, injected, reject)
		}
	}

	start := time.Now()
	if *rate > 0 {
		// Open loop: arrivals follow a Poisson process at -rate regardless
		// of completions — a slow server faces a growing backlog exactly as
		// it would behind real traffic, which is what makes the measured
		// percentiles honest SLO inputs (a closed loop slows its own
		// arrivals down when the server lags and flatters the tail).
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		next := start
		for i := 0; i < *n; i++ {
			next = next.Add(time.Duration(rng.ExpFloat64() / *rate * float64(time.Second)))
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				doRequest(i)
			}(i)
		}
	} else {
		jobs := make(chan int)
		for w := 0; w < *c; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					doRequest(i)
				}
			}()
		}
		for i := 0; i < *n; i++ {
			jobs <- i
		}
		close(jobs)
	}
	wg.Wait()
	wall := time.Since(start)

	// Aggregate.
	var ok, faulted, injected, rejected, canceled, deadlined, failed int
	var attacked, attackDetected, attackRefused, attackThrottled int
	var elidedSites, invalidated int
	var temporalFlagged, temporalPolicyRejected int
	temporalByClass := make(map[string]int)
	lats := make([]time.Duration, 0, *n)
	var hist report.Histogram
	for i, o := range outcomes {
		if o.err != nil {
			failed++
			if failed <= 5 {
				fmt.Fprintf(os.Stderr, "load: request %d: %v\n", i, o.err)
			}
			continue
		}
		// Elision accounting is summed over every response the server actually
		// sent; abandoned connections have no response and the runaway spin
		// program has no elidable sites, so aborts contribute exactly zero.
		elidedSites += o.elidedSites
		if o.invalidated {
			invalidated++
		}
		if o.throttled {
			attackThrottled++
		}
		if len(o.temporalClasses) > 0 {
			temporalFlagged++
			for _, c := range o.temporalClasses {
				temporalByClass[c]++
			}
		}
		switch {
		case o.canceled:
			// An abandoned connection has no server response, so no
			// meaningful latency sample either.
			canceled++
			continue
		case o.refused:
			// A 429'd attack probe never became a request.
			attackRefused++
			continue
		case o.attacked:
			attacked++
			if o.attackDetected {
				attackDetected++
			}
		case o.deadlined:
			deadlined++
		case o.temporalRejected:
			temporalPolicyRejected++
		case o.rejected:
			rejected++
		case o.faulted:
			faulted++
		default:
			ok++
		}
		lats = append(lats, o.latency)
		hist.Observe(o.latency)
		if o.injected {
			injected++
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		idx := int(p * float64(len(lats)-1))
		return lats[idx]
	}
	fmt.Printf("load: %d requests over %d workers in %v (%.0f req/s)\n",
		*n, *c, wall.Round(time.Millisecond), float64(*n)/wall.Seconds())
	fmt.Printf("  ok=%d faulted=%d (injected %d) rejected=%d canceled=%d deadlined=%d transport-errors=%d\n",
		ok, faulted, injected, rejected, canceled, deadlined, failed)
	fmt.Printf("  elision: guard-free sites=%d invalidated-runs=%d\n", elidedSites, invalidated)
	if *attackRate > 0 {
		fmt.Printf("  attack: probes=%d detected=%d throttled=%d refused-429=%d\n",
			attacked, attackDetected, attackThrottled, attackRefused)
	}
	if *temporalRate > 0 {
		fmt.Printf("  temporal: flagged=%d window-risk=%d scan-race=%d blindspot=%d policy-rejected=%d\n",
			temporalFlagged, temporalByClass[string(analysis.WindowRisk)],
			temporalByClass[string(analysis.WindowScanRace)],
			temporalByClass[string(analysis.WindowGuardedCopyBlindSpot)],
			temporalPolicyRejected)
	}
	if len(lats) > 0 {
		fmt.Printf("  latency: p50=%v p95=%v p99=%v max=%v\n",
			pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	}
	latRep := hist.Report()
	if *rate > 0 {
		fmt.Printf("  open-loop: target=%.0f req/s achieved=%.0f req/s hdr-p99=%v hdr-p999=%v\n",
			*rate, float64(*n)/wall.Seconds(),
			time.Duration(latRep.P99NS).Round(time.Microsecond),
			time.Duration(latRep.P999NS).Round(time.Microsecond))
	}
	if *reportFile != "" {
		rep := loadReport{
			Requests:        *n,
			Workers:         *c,
			OpenLoop:        *rate > 0,
			RateTargetRPS:   *rate,
			RateAchievedRPS: float64(*n) / wall.Seconds(),
			WallNS:          wall.Nanoseconds(),
			OK:              ok,
			Faulted:         faulted,
			Rejected:        rejected,
			Canceled:        canceled,
			Deadlined:       deadlined,
			TransportErrors: failed,
			Latency:         latRep,
		}
		if *sloP99 > 0 {
			rep.SLOP99NS = sloP99.Nanoseconds()
			met := time.Duration(latRep.P99NS) <= *sloP99
			rep.SLOP99Met = &met
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*reportFile, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("load: writing report: %w", err)
		}
	}

	if failed > 0 {
		return fmt.Errorf("load: %d requests failed at the transport/HTTP layer", failed)
	}
	if faulted != injected {
		return fmt.Errorf("load: fault verdicts off: %d faults observed, %d injected", faulted, injected)
	}

	if !*noReconcile {
		// A client-side disconnect is observed by the server asynchronously:
		// the interpreter notices on its next cancellation poll, counts the
		// abort, and releases the lease *after* the client has already moved
		// on. Poll until the abort counters and the lease ledger settle
		// before comparing deltas.
		var after server.MetricsResponse
		settleBy := time.Now().Add(15 * time.Second)
		for {
			if err := getJSON(client, *url+"/metrics", &after); err != nil {
				return fmt.Errorf("load: fetching /metrics: %w", err)
			}
			settled := after.CanceledTotal-before.CanceledTotal >= uint64(canceled) &&
				after.Pool.Leased == 0
			if settled || time.Now().After(settleBy) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		dRequests := after.RequestsTotal - before.RequestsTotal
		dFaults := after.FaultsTotal - before.FaultsTotal
		dQuarantined := after.Pool.Quarantined - before.Pool.Quarantined
		dScreened := after.ScreenedTotal - before.ScreenedTotal
		dRejected := after.ScreenRejectedTotal - before.ScreenRejectedTotal
		dCacheHits := after.ScreenCacheHits - before.ScreenCacheHits
		dCanceled := after.CanceledTotal - before.CanceledTotal
		dDeadline := after.DeadlineExceededTotal - before.DeadlineExceededTotal
		dErrors := after.ErrorsTotal - before.ErrorsTotal
		dCanceledLeases := after.Pool.CanceledLeases - before.Pool.CanceledLeases
		dElided := after.ElidedSitesTotal - before.ElidedSitesTotal
		dInvalidated := after.ElisionInvalidatedTotal - before.ElisionInvalidatedTotal
		dAttackProbes := after.AttackProbesTotal - before.AttackProbesTotal
		dDetections := after.DetectionsTotal - before.DetectionsTotal
		dThrottled := after.Pool.ThrottledTotal - before.Pool.ThrottledTotal
		dReseeds := after.Pool.ReseedsTotal - before.Pool.ReseedsTotal
		dTenantsQuar := after.Pool.TenantsQuarantined - before.Pool.TenantsQuarantined
		fmt.Printf("  server: +requests=%d +faults=%d +screened=%d +rejected=%d +cache-hits=%d +quarantined=%d\n",
			dRequests, dFaults, dScreened, dRejected, dCacheHits, dQuarantined)
		fmt.Printf("  server: +elided-sites=%d +elision-invalidated=%d\n", dElided, dInvalidated)
		if canceled+deadlined > 0 {
			fmt.Printf("  server: +canceled=%d +deadline-exceeded=%d +canceled-leases=%d leased-now=%d\n",
				dCanceled, dDeadline, dCanceledLeases, after.Pool.Leased)
		}
		// Abort accounting must be exact: every client disconnect and every
		// deadline cutoff shows up in its counter, exactly once, and never
		// doubles as an error.
		if dCanceled != uint64(canceled) {
			return fmt.Errorf("load: canceled_total off: server counted +%d, client abandoned %d requests", dCanceled, canceled)
		}
		if dDeadline != uint64(deadlined) {
			return fmt.Errorf("load: deadline_exceeded_total off: server counted +%d, client expected %d", dDeadline, deadlined)
		}
		if dErrors != 0 {
			return fmt.Errorf("load: +%d errors_total: aborts or faults misclassified as errors", dErrors)
		}
		// Elision accounting is exact, with no cancel tolerance: every
		// guard-free site the server credited came back in a response the
		// client summed (aborted runs carry zero elidable sites), and a proof
		// invalidation anywhere is a loud soundness event, never absorbed.
		if dElided != uint64(elidedSites) {
			return fmt.Errorf("load: elided_sites_total off: server credited +%d guard-free sites, client responses summed %d", dElided, elidedSites)
		}
		if dInvalidated != uint64(invalidated) {
			return fmt.Errorf("load: elision_invalidated_total off: server counted +%d fallbacks, client observed %d", dInvalidated, invalidated)
		}
		if after.Pool.Leased != 0 {
			return fmt.Errorf("load: %d leases still outstanding after drain: leaked lease", after.Pool.Leased)
		}
		if dCanceledLeases > uint64(canceled+deadlined) {
			return fmt.Errorf("load: +%d canceled leases for %d injected aborts", dCanceledLeases, canceled+deadlined)
		}
		// A rejected program never becomes a request: the screen turns it
		// away before a session is leased or a request observed. An
		// abandoned connection usually completes as a 499 request, but a
		// cancel landing before the run starts legitimately short-circuits
		// earlier — hence the canceled-wide tolerance (and exactness when no
		// cancels were injected).
		// A refused (429) attack probe never becomes a request; a detected
		// one faults and quarantines its session exactly like an injected
		// OOB probe.
		wantFaults := uint64(faulted + attackDetected)
		wantReqMax := uint64(*n - rejected - temporalPolicyRejected - attackRefused)
		wantReqMin := wantReqMax - uint64(canceled)
		if dRequests > wantReqMax || dRequests < wantReqMin || dFaults != wantFaults {
			return fmt.Errorf("load: metrics do not reconcile: server saw +%d requests / +%d faults, client expected +%d..%d / +%d",
				dRequests, dFaults, wantReqMin, wantReqMax, wantFaults)
		}
		if dQuarantined != wantFaults {
			return fmt.Errorf("load: %d faults but +%d sessions quarantined", wantFaults, dQuarantined)
		}
		if *attackRate > 0 {
			fmt.Printf("  server: +attack-probes=%d +detections=%d +throttled=%d +reseeds=%d +tenants-quarantined=%d +sessions-reseeded=%d\n",
				dAttackProbes, dDetections, dThrottled, dReseeds, dTenantsQuar,
				after.Pool.SessionsReseeded-before.Pool.SessionsReseeded)
		}
		// Adversarial accounting is exact: every served probe counts once,
		// every detection counts once, and the escalation counters follow
		// the client's replica of the state machine with no tolerance.
		if dAttackProbes != uint64(attacked) {
			return fmt.Errorf("load: attack_probes_total off: server counted +%d, client sent %d served probes", dAttackProbes, attacked)
		}
		if dDetections != uint64(attackDetected) {
			return fmt.Errorf("load: detections_total off: server counted +%d, client observed %d detected probes", dDetections, attackDetected)
		}
		if dThrottled != uint64(attackThrottled) {
			return fmt.Errorf("load: throttled_total off: server counted +%d, client expected %d delay-tier admissions", dThrottled, attackThrottled)
		}
		// Tier crossings are a pure function of the detected-fault count and
		// the mirrored thresholds.
		expReseeds := 0
		// The delay tier is only ever entered when its threshold sits below
		// the quarantine threshold (otherwise the tenant jumps straight to
		// quarantine in a single crossing).
		delayReachable := *attackDelayThreshold > 0 &&
			(*attackQuarantineThreshold == 0 || *attackDelayThreshold < *attackQuarantineThreshold)
		if delayReachable && attackDetected >= *attackDelayThreshold {
			expReseeds++
		}
		expTenantsQuar := 0
		if *attackQuarantineThreshold > 0 && attackDetected >= *attackQuarantineThreshold {
			expReseeds++
			expTenantsQuar = 1
		}
		if dReseeds != uint64(expReseeds) {
			return fmt.Errorf("load: reseeds_total off: server counted +%d tier crossings, client expected %d", dReseeds, expReseeds)
		}
		if dTenantsQuar != uint64(expTenantsQuar) {
			return fmt.Errorf("load: tenants_quarantined_total off: server counted +%d, client expected %d", dTenantsQuar, expTenantsQuar)
		}
		// Temporal accounting is exact: every corpus submission was flagged
		// under its expected window class, and only the policy rejections —
		// exposed shapes the fault screen admitted — count as temporal
		// rejections; the provable faults ride screen_rejected_total instead.
		dTemporalFlagged := after.TemporalFlaggedTotal - before.TemporalFlaggedTotal
		dTemporalRejected := after.TemporalRejectedTotal - before.TemporalRejectedTotal
		dWindowRisk := after.TemporalWindowRisk - before.TemporalWindowRisk
		dScanRace := after.TemporalScanRace - before.TemporalScanRace
		dBlindSpot := after.TemporalBlindSpot - before.TemporalBlindSpot
		if *temporalRate > 0 {
			fmt.Printf("  server: +temporal-flagged=%d +window-risk=%d +scan-race=%d +blindspot=%d +temporal-rejected=%d\n",
				dTemporalFlagged, dWindowRisk, dScanRace, dBlindSpot, dTemporalRejected)
		}
		if dTemporalFlagged != uint64(temporalFlagged) ||
			dWindowRisk != uint64(temporalByClass[string(analysis.WindowRisk)]) ||
			dScanRace != uint64(temporalByClass[string(analysis.WindowScanRace)]) ||
			dBlindSpot != uint64(temporalByClass[string(analysis.WindowGuardedCopyBlindSpot)]) {
			return fmt.Errorf("load: temporal counters do not reconcile: server flagged +%d (risk %d / race %d / blindspot %d), client submitted %d (%v)",
				dTemporalFlagged, dWindowRisk, dScanRace, dBlindSpot, temporalFlagged, temporalByClass)
		}
		if dTemporalRejected != uint64(temporalPolicyRejected) {
			return fmt.Errorf("load: temporal_rejected_total off: server counted +%d, client expected %d policy rejections",
				dTemporalRejected, temporalPolicyRejected)
		}
		// Inline programs — bad ones and runaway spins alike — all pass the
		// admission screen; only the bad ones are rejected. Cancels that
		// disconnected before screening shave the screened total, same
		// tolerance as requests above. A temporal corpus submission is
		// screened whichever way it is ultimately turned away.
		wantScreenMax := uint64(rejected + temporalPolicyRejected + canceled + deadlined)
		wantScreenMin := wantScreenMax - uint64(canceled)
		if dScreened > wantScreenMax || dScreened < wantScreenMin || dRejected != uint64(rejected) {
			return fmt.Errorf("load: screening counters do not reconcile: server screened +%d (want %d..%d) / rejected +%d (want %d)",
				dScreened, wantScreenMin, wantScreenMax, dRejected, rejected)
		}
		// All but the first (cold) screening of each distinct program must
		// be verdict-cache hits.
		distinct := 0
		if rejected > 0 {
			distinct += len(badProgs)
		}
		if canceled+deadlined > 0 {
			distinct++ // the spin program
		}
		if temporalFlagged > 0 {
			d := len(temporalProgs)
			if temporalFlagged < d {
				d = temporalFlagged
			}
			distinct += d
		}
		if dScreened > 0 && dCacheHits+uint64(distinct) < dScreened {
			return fmt.Errorf("load: screen cache ineffective: +%d hits for %d screenings over %d distinct programs",
				dCacheHits, dScreened, distinct)
		}
		// Per-shard ledger reconciliation. The pool accounts every lease to
		// exactly one shard's tokens (shard_leases_total moves only where
		// created/reused moves), so the shard sums must reproduce the
		// pool-level counters to the unit — and, with no aborts in flight,
		// match the served request count exactly. Shedding is decided at a
		// shard's queue, so shard_shed_total sums to the pool's rejected.
		if *expectShards > 0 {
			sh := after.Pool.Shards
			if len(sh) != *expectShards {
				return fmt.Errorf("load: server reports %d shards, -expect-shards %d", len(sh), *expectShards)
			}
			var dLeases, dSteals, dShed, dCreated, dReused, maxLeases uint64
			leaseDeltas := make([]uint64, len(sh))
			for i, a := range sh {
				var b pool.ShardStats
				if i < len(before.Pool.Shards) {
					b = before.Pool.Shards[i]
				}
				if a.Leased != 0 || a.Waiters != 0 {
					return fmt.Errorf("load: shard %d not drained: leased=%d waiters=%d", i, a.Leased, a.Waiters)
				}
				leaseDeltas[i] = a.Leases - b.Leases
				dLeases += leaseDeltas[i]
				dSteals += a.Steals - b.Steals
				dShed += a.Shed - b.Shed
				dCreated += a.Created - b.Created
				dReused += a.Reused - b.Reused
				if leaseDeltas[i] > maxLeases {
					maxLeases = leaseDeltas[i]
				}
			}
			fmt.Printf("  shards: leases=%v steals=%d shed=%d (created+reused=%d)\n",
				leaseDeltas, dSteals, dShed, dCreated+dReused)
			if dLeases != dCreated+dReused {
				return fmt.Errorf("load: shard lease ledger off: shards sum +%d leases, pool counted +%d created and +%d reused", dLeases, dCreated, dReused)
			}
			dPoolRejected := after.Pool.Rejected - before.Pool.Rejected
			if dShed != dPoolRejected {
				return fmt.Errorf("load: shard shed ledger off: shards sum +%d, pool rejected +%d", dShed, dPoolRejected)
			}
			if canceled == 0 && deadlined == 0 && attackRefused == 0 && dLeases != dRequests {
				return fmt.Errorf("load: +%d shard leases for +%d served requests", dLeases, dRequests)
			}
			// Balance: the affine tenant spread puts the same number of
			// tenants on every shard, so uniform traffic must spread within
			// 2x of the mean — skew here means routing or stealing is
			// hoarding leases on one shard.
			if *tenantCount > 0 {
				mean := float64(dLeases) / float64(len(sh))
				if mean > 0 && float64(maxLeases) > 2*mean {
					return fmt.Errorf("load: shard imbalance: max +%d leases against mean %.1f (uniform affine load must stay within 2x)", maxLeases, mean)
				}
			}
		}
	}
	// The SLO gate reads the HDR histogram's conservative p99 (bucket upper
	// bound), so a borderline run fails rather than squeaking by.
	if *sloP99 > 0 {
		if p99 := time.Duration(latRep.P99NS); p99 > *sloP99 {
			return fmt.Errorf("load: p99 SLO violated: %v against a %v budget", p99, *sloP99)
		}
		fmt.Printf("  slo: p99=%v within the %v budget\n", time.Duration(latRep.P99NS), *sloP99)
	}
	return nil
}

// loadReport is the -report JSON artifact: the run's shape, throughput and
// HDR latency summary, plus the SLO verdict when a budget was set.
type loadReport struct {
	Requests        int                  `json:"requests"`
	Workers         int                  `json:"workers"`
	OpenLoop        bool                 `json:"open_loop"`
	RateTargetRPS   float64              `json:"rate_target_rps,omitempty"`
	RateAchievedRPS float64              `json:"rate_achieved_rps"`
	WallNS          int64                `json:"wall_ns"`
	OK              int                  `json:"ok"`
	Faulted         int                  `json:"faulted"`
	Rejected        int                  `json:"rejected"`
	Canceled        int                  `json:"canceled"`
	Deadlined       int                  `json:"deadlined"`
	TransportErrors int                  `json:"transport_errors"`
	Latency         report.LatencyReport `json:"latency"`
	SLOP99NS        int64                `json:"slo_p99_ns,omitempty"`
	SLOP99Met       *bool                `json:"slo_p99_met,omitempty"`
}

// loadOutcome is one request's client-side classification.
type loadOutcome struct {
	latency     time.Duration
	faulted     bool
	injected    bool
	rejected    bool
	canceled    bool
	deadlined   bool
	elidedSites int
	invalidated bool
	// Attack-probe classification: attacked marks a served probe,
	// attackDetected that the scheme caught it, refused a 429 from the
	// quarantine tier, throttled an admission the client expected to pay
	// the delay-tier penalty.
	attacked       bool
	attackDetected bool
	refused        bool
	throttled      bool
	// Temporal-screen classification: temporalClasses are the distinct
	// window classes the response's verdict was flagged with (any screened
	// submission can carry findings, including the bad-program corpus);
	// temporalRejected marks a policy rejection — an exposed shape the fault
	// screen admitted, counted in temporal_rejected_total rather than
	// screen_rejected_total.
	temporalClasses  []string
	temporalRejected bool
	err              error
}

// temporalClasses extracts the distinct window classes from a screen
// verdict, mirroring the server's per-verdict set semantics for the
// per-class temporal counters.
func temporalClasses(v *analysis.ScreenVerdict) []string {
	var out []string
	seen := make(map[string]bool)
	for _, f := range v.Temporal {
		c := string(f.Class)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// temporalEntry is one red-team corpus program the load generator submits
// under its risky scheme, with the temporal verdict it holds the server to.
type temporalEntry struct {
	raw          []byte
	scheme       string
	class        string
	policyReject bool
}

// fire sends one /run request and classifies the outcome. A response is an
// error unless its verdict matches what was asked for: injected requests
// must come back 200 with a structured fault report, reject submissions
// must come back 422 with a structured screen verdict, and clean requests
// must do neither.
func fire(client *http.Client, base string, req server.RunRequest, injected, reject bool) (o loadOutcome) {
	o.injected = injected
	body, err := json.Marshal(req)
	if err != nil {
		o.err = err
		return o
	}
	start := time.Now()
	resp, err := client.Post(base+"/run", "application/json", bytes.NewReader(body))
	o.latency = time.Since(start)
	if err != nil {
		o.err = err
		return o
	}
	defer resp.Body.Close()
	if reject {
		o.rejected = resp.StatusCode == http.StatusUnprocessableEntity
		if !o.rejected {
			o.err = fmt.Errorf("bad program not rejected: status %d", resp.StatusCode)
			return o
		}
		var rej server.RejectResponse
		if err := json.NewDecoder(resp.Body).Decode(&rej); err != nil {
			o.err = fmt.Errorf("decoding 422 body: %w", err)
			return o
		}
		v := rej.Verdict
		if v == nil || !v.Rejected() || v.PC < 0 || v.Native == "" || len(v.Provenance) == 0 {
			o.err = fmt.Errorf("422 without a structured verdict: %+v", rej)
			return o
		}
		o.temporalClasses = temporalClasses(v)
		return o
	}
	var out server.RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		o.err = fmt.Errorf("decoding response (status %d): %w", resp.StatusCode, err)
		return o
	}
	if resp.StatusCode != http.StatusOK {
		o.err = fmt.Errorf("status %d", resp.StatusCode)
		return o
	}
	o.faulted = out.Fault != nil
	o.elidedSites = out.ElidedSites
	o.invalidated = out.ElisionInvalidated
	if injected && out.Fault == nil {
		o.err = fmt.Errorf("injected fault came back clean (session %s)", out.Session)
	}
	if !injected && out.Fault != nil {
		o.err = fmt.Errorf("unexpected fault on session %s: %s", out.Session, out.Fault.Signature)
	}
	if !injected && out.Error != "" {
		o.err = fmt.Errorf("session %s: %s", out.Session, out.Error)
	}
	// The canned safe probe is screened VerdictSafe, so its proofs must have
	// compiled into at least one guard-free site; a fully checked safe run
	// means the elision pipeline silently fell apart.
	if req.Canned == "safe" && o.err == nil {
		if out.ElidedSites == 0 {
			o.err = fmt.Errorf("session %s: safe probe ran fully checked: no elided sites in response", out.Session)
		}
		if out.ElisionInvalidated {
			o.err = fmt.Errorf("session %s: safe probe's elision proofs were invalidated mid-run", out.Session)
		}
	}
	return o
}

// fireCancel sends a runaway /run request and abandons the connection after
// cancelAfter, simulating a client that walks away mid-run. Success is the
// client-side context error: the server never gets to answer. If a response
// does come back the runaway finished before the disconnect — either the
// server is missing -run-timeout/-step-budget headroom or the spin was too
// short — and the outcome is an error because the server will not have
// counted a cancel.
func fireCancel(client *http.Client, base string, req server.RunRequest, cancelAfter time.Duration) (o loadOutcome) {
	body, err := json.Marshal(req)
	if err != nil {
		o.err = err
		return o
	}
	ctx, cancel := context.WithTimeout(context.Background(), cancelAfter)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/run", bytes.NewReader(body))
	if err != nil {
		o.err = err
		return o
	}
	hreq.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := client.Do(hreq)
	o.latency = time.Since(start)
	if err == nil {
		resp.Body.Close()
		o.err = fmt.Errorf("abandoned runaway completed before the disconnect (status %d): cancel not injected", resp.StatusCode)
		return o
	}
	o.canceled = true
	return o
}

// fireAttack sends one canned attack probe as the red-team tenant and
// holds the server to the deterministic script: a quarantined tenant gets
// exactly 429, an admitted probe gets 200 with a fault verdict matching
// the scheme (detected under MTE, landed silently otherwise).
func fireAttack(client *http.Client, base string, req server.RunRequest, expectDetect, expect429 bool) (o loadOutcome) {
	body, err := json.Marshal(req)
	if err != nil {
		o.err = err
		return o
	}
	start := time.Now()
	resp, err := client.Post(base+"/run", "application/json", bytes.NewReader(body))
	o.latency = time.Since(start)
	if err != nil {
		o.err = err
		return o
	}
	defer resp.Body.Close()
	if expect429 {
		if resp.StatusCode != http.StatusTooManyRequests {
			o.err = fmt.Errorf("quarantined tenant not refused: status %d, want 429", resp.StatusCode)
			return o
		}
		o.refused = true
		return o
	}
	var out server.RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		o.err = fmt.Errorf("decoding response (status %d): %w", resp.StatusCode, err)
		return o
	}
	if resp.StatusCode != http.StatusOK {
		o.err = fmt.Errorf("attack probe: status %d", resp.StatusCode)
		return o
	}
	o.attacked = true
	o.attackDetected = out.Fault != nil
	if o.attackDetected != expectDetect {
		o.err = fmt.Errorf("attack probe verdict off on session %s: detected=%v, scheme predicts %v",
			out.Session, o.attackDetected, expectDetect)
	}
	return o
}

// fireTemporal submits one red-team corpus program under its risky scheme
// and requires the 422 to carry the temporal evidence: a finding of the
// expected window class with the full alloc → acquire → interfering-write →
// late-check provenance chain. The provably-faulting shapes ride the
// ordinary screen rejection; the policy-rejected shapes must come back with
// a clean fault verdict and the temporal policy as the sole reason.
func fireTemporal(client *http.Client, base string, req server.RunRequest, te temporalEntry) (o loadOutcome) {
	body, err := json.Marshal(req)
	if err != nil {
		o.err = err
		return o
	}
	start := time.Now()
	resp, err := client.Post(base+"/run", "application/json", bytes.NewReader(body))
	o.latency = time.Since(start)
	if err != nil {
		o.err = err
		return o
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		o.err = fmt.Errorf("temporal corpus program (%s under %s) not rejected: status %d", te.class, te.scheme, resp.StatusCode)
		return o
	}
	var rej server.RejectResponse
	if err := json.NewDecoder(resp.Body).Decode(&rej); err != nil {
		o.err = fmt.Errorf("decoding 422 body: %w", err)
		return o
	}
	v := rej.Verdict
	if v == nil || len(v.Temporal) == 0 {
		o.err = fmt.Errorf("422 without temporal findings: %+v", rej)
		return o
	}
	f := v.Temporal[0]
	if string(f.Class) != te.class {
		o.err = fmt.Errorf("temporal class %q, want %q", f.Class, te.class)
		return o
	}
	if len(f.Chain) != 4 {
		o.err = fmt.Errorf("provenance chain has %d steps, want the full 4: %q", len(f.Chain), f.Chain.String())
		return o
	}
	o.temporalClasses = temporalClasses(v)
	if te.policyReject {
		if v.Rejected() {
			o.err = fmt.Errorf("policy-reject shape %q came back as a fault verdict", te.class)
			return o
		}
		o.temporalRejected = true
	} else {
		if !v.Rejected() {
			o.err = fmt.Errorf("provably-faulting shape %q not rejected by the fault screen", te.class)
			return o
		}
		o.rejected = true
	}
	return o
}

// fireDeadline sends a runaway /run request and requires the server's
// -run-timeout to cut it off: a 504 carrying abort="deadline_exceeded".
func fireDeadline(client *http.Client, base string, req server.RunRequest) (o loadOutcome) {
	body, err := json.Marshal(req)
	if err != nil {
		o.err = err
		return o
	}
	start := time.Now()
	resp, err := client.Post(base+"/run", "application/json", bytes.NewReader(body))
	o.latency = time.Since(start)
	if err != nil {
		o.err = err
		return o
	}
	defer resp.Body.Close()
	var out server.RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		o.err = fmt.Errorf("decoding response (status %d): %w", resp.StatusCode, err)
		return o
	}
	if resp.StatusCode != http.StatusGatewayTimeout || out.Abort != "deadline_exceeded" {
		o.err = fmt.Errorf("runaway not cut off by -run-timeout: status %d abort=%q (is the server running with -run-timeout?)",
			resp.StatusCode, out.Abort)
		return o
	}
	o.deadlined = true
	// The spin program has no elidable sites, but sum whatever the server
	// reported so the reconciliation stays exact rather than assumed.
	o.elidedSites = out.ElidedSites
	o.invalidated = out.ElisionInvalidated
	return o
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
