package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"mte4jni/internal/server"
)

// runLoad is the concurrent load generator for `mte4jni serve`. It fires n
// requests at the daemon across c connections — the canned safe probe, a
// built-in workload, or (every -fault-every-th request) the canned
// deliberately-faulting probe — then prints a latency/fault summary and
// reconciles its own counts against the server's /metrics. Any verdict
// mismatch (a fault where none was injected, a missing fault where one was,
// a non-200 response, or metrics that do not add up) makes it exit nonzero.
func runLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8321", "server base URL")
	n := fs.Int("n", 50, "total requests")
	c := fs.Int("c", 8, "concurrent workers")
	scheme := fs.String("scheme", "sync", "protection scheme for every request (none, guarded, sync, async)")
	workload := fs.String("workload", "", "run this built-in workload instead of the canned safe probe")
	iters := fs.Int("iters", 1, "workload iterations per request")
	faultEvery := fs.Int("fault-every", 0, "make every k-th request the deliberately-faulting OOB probe (0 = never)")
	noReconcile := fs.Bool("no-reconcile", false, "skip the /metrics reconciliation (server is shared with other clients)")
	fs.Parse(args)
	if _, err := server.ParseScheme(*scheme); err != nil {
		return err
	}
	if *n <= 0 || *c <= 0 {
		return fmt.Errorf("load: -n and -c must be positive")
	}

	client := &http.Client{Timeout: 60 * time.Second}
	type outcome struct {
		latency  time.Duration
		faulted  bool
		injected bool
		err      error
	}
	outcomes := make([]outcome, *n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				req := server.RunRequest{Scheme: *scheme}
				injected := *faultEvery > 0 && (i+1)%*faultEvery == 0
				switch {
				case injected:
					req.Canned = "oob"
				case *workload != "":
					req.Workload = *workload
					req.Iterations = *iters
				default:
					req.Canned = "safe"
				}
				outcomes[i] = fire(client, *url, req, injected)
			}
		}()
	}
	for i := 0; i < *n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)

	// Aggregate.
	var ok, faulted, injected, failed int
	lats := make([]time.Duration, 0, *n)
	for i, o := range outcomes {
		if o.err != nil {
			failed++
			if failed <= 5 {
				fmt.Fprintf(os.Stderr, "load: request %d: %v\n", i, o.err)
			}
			continue
		}
		lats = append(lats, o.latency)
		if o.injected {
			injected++
		}
		if o.faulted {
			faulted++
		} else {
			ok++
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		idx := int(p * float64(len(lats)-1))
		return lats[idx]
	}
	fmt.Printf("load: %d requests over %d workers in %v (%.0f req/s)\n",
		*n, *c, wall.Round(time.Millisecond), float64(*n)/wall.Seconds())
	fmt.Printf("  ok=%d faulted=%d (injected %d) transport-errors=%d\n", ok, faulted, injected, failed)
	if len(lats) > 0 {
		fmt.Printf("  latency: p50=%v p95=%v p99=%v max=%v\n",
			pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	}

	if failed > 0 {
		return fmt.Errorf("load: %d requests failed at the transport/HTTP layer", failed)
	}
	if faulted != injected {
		return fmt.Errorf("load: fault verdicts off: %d faults observed, %d injected", faulted, injected)
	}

	if !*noReconcile {
		var m server.MetricsResponse
		if err := getJSON(client, *url+"/metrics", &m); err != nil {
			return fmt.Errorf("load: fetching /metrics: %w", err)
		}
		fmt.Printf("  server: requests=%d faults=%d unique-signatures=%d quarantined=%d\n",
			m.RequestsTotal, m.FaultsTotal, m.UniqueFaultSignatures, m.Pool.Quarantined)
		if m.RequestsTotal != uint64(*n) || m.FaultsTotal != uint64(faulted) {
			return fmt.Errorf("load: metrics do not reconcile: server saw %d requests / %d faults, client sent %d / %d",
				m.RequestsTotal, m.FaultsTotal, *n, faulted)
		}
		if m.Pool.Quarantined != uint64(faulted) {
			return fmt.Errorf("load: %d faults but %d sessions quarantined", faulted, m.Pool.Quarantined)
		}
	}
	return nil
}

// fire sends one /run request and classifies the outcome. A response is an
// error unless its verdict matches what was asked for: injected requests
// must come back with a structured fault report, clean requests must not.
func fire(client *http.Client, base string, req server.RunRequest, injected bool) (o struct {
	latency  time.Duration
	faulted  bool
	injected bool
	err      error
}) {
	o.injected = injected
	body, err := json.Marshal(req)
	if err != nil {
		o.err = err
		return o
	}
	start := time.Now()
	resp, err := client.Post(base+"/run", "application/json", bytes.NewReader(body))
	o.latency = time.Since(start)
	if err != nil {
		o.err = err
		return o
	}
	defer resp.Body.Close()
	var out server.RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		o.err = fmt.Errorf("decoding response (status %d): %w", resp.StatusCode, err)
		return o
	}
	if resp.StatusCode != http.StatusOK {
		o.err = fmt.Errorf("status %d", resp.StatusCode)
		return o
	}
	o.faulted = out.Fault != nil
	if injected && out.Fault == nil {
		o.err = fmt.Errorf("injected fault came back clean (session %s)", out.Session)
	}
	if !injected && out.Fault != nil {
		o.err = fmt.Errorf("unexpected fault on session %s: %s", out.Session, out.Fault.Signature)
	}
	if !injected && out.Error != "" {
		o.err = fmt.Errorf("session %s: %s", out.Session, out.Error)
	}
	return o
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
