package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"mte4jni"
	"mte4jni/internal/bench"
	"mte4jni/internal/pool"
)

// runBench is the benchmark-snapshot subcommand. Three modes:
//
//	mte4jni bench                     # run the built-in suite, snapshot JSON to stdout
//	mte4jni bench -o BENCH.json       # ... to a file
//	mte4jni bench -parse out.txt      # convert `go test -bench` output to snapshot JSON
//	mte4jni bench -combine a.json b.json  # pair two snapshots into one diff file
//	mte4jni bench -diff a.json b.json # compare two snapshots
//	mte4jni bench -diff BENCH_PR2.json  # compare the halves of a combined diff file
//
// -diff doubles as a CI regression gate: it exits nonzero when any
// benchmark slowed by more than -threshold percent (default 10; negative
// disables the gate).
//
// Snapshots are the BENCH_*.json files committed at the repo root; see
// README "Benchmark snapshots".
func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	quick := fs.Bool("quick", false, "short, noisier measurement (~20ms per case)")
	note := fs.String("note", "", "free-form note stored in the snapshot")
	out := fs.String("o", "", "write the snapshot JSON to this file instead of stdout")
	parse := fs.String("parse", "", "parse `go test -bench` text output from this file instead of running the suite")
	diff := fs.Bool("diff", false, "compare two snapshot files, or the halves of one combined diff file")
	threshold := fs.Float64("threshold", 10, "with -diff, fail (exit nonzero) when any benchmark slows by more than this percentage; negative disables the gate")
	combine := fs.Bool("combine", false, "pair two snapshot files into one combined diff file")
	fs.Parse(args)

	if *diff {
		var before, after *bench.Snapshot
		switch fs.NArg() {
		case 1:
			d, err := bench.ReadDiffFile(fs.Arg(0))
			if err != nil {
				return err
			}
			before, after = d.Before, d.After
		case 2:
			var err error
			if before, err = bench.ReadSnapshotFile(fs.Arg(0)); err != nil {
				return err
			}
			if after, err = bench.ReadSnapshotFile(fs.Arg(1)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("bench -diff needs one combined diff file or two snapshot files")
		}
		fmt.Print(bench.Compare(before, after))
		if *threshold >= 0 {
			if regs := bench.Regressions(before, after, *threshold); len(regs) > 0 {
				fmt.Fprintf(os.Stderr, "\nbench: %d benchmark(s) regressed beyond %.1f%%:\n", len(regs), *threshold)
				for _, r := range regs {
					fmt.Fprintf(os.Stderr, "  %s\n", r)
				}
				return fmt.Errorf("benchmark regression gate failed (threshold %.1f%%)", *threshold)
			}
		}
		return nil
	}

	if *combine {
		if fs.NArg() != 2 {
			return fmt.Errorf("bench -combine needs exactly two snapshot files (before, after)")
		}
		before, err := bench.ReadSnapshotFile(fs.Arg(0))
		if err != nil {
			return err
		}
		after, err := bench.ReadSnapshotFile(fs.Arg(1))
		if err != nil {
			return err
		}
		d := bench.NewDiff(*note, before, after)
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return d.WriteJSON(w)
	}

	var snap *bench.Snapshot
	if *parse != "" {
		f, err := os.Open(*parse)
		if err != nil {
			return err
		}
		defer f.Close()
		results, err := bench.ParseGoBench(f)
		if err != nil {
			return err
		}
		snap = bench.NewSnapshot(*note)
		for _, r := range results {
			snap.Add(r)
		}
	} else {
		var err error
		snap, err = mte4jni.RunBenchSuite(mte4jni.BenchSuiteOptions{Quick: *quick, Note: *note})
		if err != nil {
			return err
		}
		// The pool throughput rows live in internal/pool (which the root
		// package's suite cannot import back); append them here.
		rows, err := pool.ThroughputBench(context.Background(), *quick)
		if err != nil {
			return err
		}
		for _, r := range rows {
			snap.Add(r)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return snap.WriteJSON(w)
}
