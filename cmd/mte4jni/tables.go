package main

import (
	"fmt"
	"runtime"

	"mte4jni"
	"mte4jni/internal/bench"
	"mte4jni/internal/vm"
)

// runTable1 prints the paper's Table 1: the JNI interfaces that return raw
// pointers to heap memory, as implemented by this reproduction. The
// expansion footnote is materialized: the * families are listed for all
// seven primitive types.
func runTable1(args []string) error {
	t := bench.NewTable("Table 1: JNI interfaces returning raw pointers to heap memory (all protected by the active scheme)",
		"Get interface", "Release interface", "Pointers to")
	t.AddRow("GetStringCritical", "ReleaseStringCritical", "String")
	t.AddRow("GetPrimitiveArrayCritical", "ReleasePrimitiveArrayCritical", "Primitive array")
	t.AddRow("GetStringChars", "ReleaseStringChars", "String")
	t.AddRow("GetStringUTFChars", "ReleaseStringUTFChars", "UTF-encoded String")
	for _, k := range vm.Kinds {
		t.AddRow(
			fmt.Sprintf("Get%sArrayElements", k.JNIName()),
			fmt.Sprintf("Release%sArrayElements", k.JNIName()),
			fmt.Sprintf("%s array", k))
	}
	for _, k := range vm.Kinds {
		t.AddRow(
			fmt.Sprintf("Get%sArrayRegion", k.JNIName()),
			fmt.Sprintf("Set%sArrayRegion", k.JNIName()),
			fmt.Sprintf("portion of %s array (copying, bounds-checked)", k))
	}
	fmt.Println(t)
	return nil
}

// runTable2 prints the paper's Table 2 next to the simulation's actual
// environment.
func runTable2(args []string) error {
	t := bench.NewTable("Table 2: experimental environment configuration",
		"Parameter", "Paper (on-device)", "This reproduction (simulated)")
	t.AddRow("Experimental Device", "OPPO Find N2 Flip", "software MTE + mini-ART simulation")
	t.AddRow("SoC", "MediaTek Dimensity 9000+ (ARMv8.5-A, MTE)", fmt.Sprintf("%s/%s, %d logical CPUs", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()))
	t.AddRow("RAM", "12GB", "simulated 64MiB Java heap + 64MiB native heap per runtime")
	t.AddRow("System Environment", "Color OS 14.0 / Android 14", runtime.Version())
	t.AddRow("Hash tables (k)", "16", "16 (configurable)")
	t.AddRow("Schemes", "no-protection / guarded copy / MTE4JNI sync / async", func() string {
		s := ""
		for i, sch := range mte4jni.Schemes() {
			if i > 0 {
				s += " / "
			}
			s += sch.String()
		}
		return s
	}())
	fmt.Println(t)
	return nil
}
