package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mte4jni/internal/analysis"
	"mte4jni/internal/pool"
	"mte4jni/internal/report"
	"mte4jni/internal/server"
)

// runServe starts the multi-tenant serving daemon: a pool of isolated VM
// sessions behind an HTTP/JSON API. See internal/server for the endpoints
// and DESIGN.md "Serving layer" for the lifecycle.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8321", "listen address; port 0 binds an ephemeral port")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
	sessions := fs.Int("sessions", 64, "maximum concurrent VM sessions")
	waiters := fs.Int("waiters", 0, "maximum queued requests before shedding with 503 (0 = 4x sessions)")
	heapMB := fs.Int("heap-mb", 32, "per-session Java heap size in MiB")
	seed := fs.Int64("seed", 1, "base tag-RNG seed (session n runs with seed+n)")
	faultRing := fs.Int("fault-ring", report.DefaultSinkCapacity, "fault records retained for /metrics")
	acquireTimeout := fs.Duration("acquire-timeout", 5*time.Second, "how long a request may wait for a session")
	runTimeout := fs.Duration("run-timeout", 0, "per-request execution deadline, lease wait included (0 = none); expiry returns 504")
	stepBudget := fs.Int64("step-budget", 0, "interpreter steps allowed per inline-program run (0 = interpreter default)")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "how long graceful shutdown may drain in-flight requests")
	attackDelayThreshold := fs.Int("attack-delay-threshold", 0, "per-tenant detected faults before admissions are throttled (0 = escalating defense delay tier off)")
	attackQuarantineThreshold := fs.Int("attack-quarantine-threshold", 0, "per-tenant detected faults before admissions are refused with 429 (0 = quarantine tier off)")
	attackDelay := fs.Duration("attack-delay", time.Millisecond, "admission delay in the throttling tier")
	attackDecay := fs.Duration("attack-decay", 0, "interval after which an escalated tenant steps one defense tier back down (0 = escalation is permanent)")
	temporalPolicy := fs.String("temporal-policy", "reject", "what to do with programs whose temporal exposure is live under the requested scheme: reject, force-sync, or log")
	fs.Parse(args)

	policy, err := analysis.ParseTemporalPolicy(*temporalPolicy)
	if err != nil {
		return err
	}

	srv := server.New(server.Config{
		Pool: pool.Config{
			MaxSessions: *sessions,
			MaxWaiters:  *waiters,
			HeapSize:    uint64(*heapMB) << 20,
			Seed:        *seed,
			Defense: pool.DefenseConfig{
				DelayThreshold:      *attackDelayThreshold,
				QuarantineThreshold: *attackQuarantineThreshold,
				Delay:               *attackDelay,
				DecayInterval:       *attackDecay,
			},
		},
		SinkCapacity:   *faultRing,
		AcquireTimeout: *acquireTimeout,
		RunTimeout:     *runTimeout,
		StepBudget:     *stepBudget,
		TemporalPolicy: policy,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "mte4jni serve: listening on %s (%d sessions, %d MiB heap each)\n",
		bound, *sessions, *heapMB)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "mte4jni serve: shutting down")
	// The shutdown context derives from the signal context rather than a
	// fresh Background(): WithoutCancel strips the already-fired first
	// signal (which would expire the drain instantly) while keeping the
	// context lineage, the timeout bounds the drain, and a second signal
	// during the drain aborts it immediately.
	shutdownCtx, cancel := signal.NotifyContext(context.WithoutCancel(ctx), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	shutdownCtx, cancelTimeout := context.WithTimeout(shutdownCtx, *shutdownTimeout)
	defer cancelTimeout()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return <-errCh
}
