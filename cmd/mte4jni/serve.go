package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"mte4jni/internal/analysis"
	"mte4jni/internal/pool"
	"mte4jni/internal/report"
	"mte4jni/internal/server"
)

// runServe starts the multi-tenant serving daemon: a pool of isolated VM
// sessions behind an HTTP/JSON API. See internal/server for the endpoints
// and DESIGN.md "Serving layer" for the lifecycle.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8321", "listen address; port 0 binds an ephemeral port")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
	sessions := fs.Int("sessions", 64, "maximum concurrent VM sessions")
	shards := fs.Int("shards", 1, "admission shards the pool is split into ({tenant, scheme}-affine routing with cross-shard work stealing)")
	cluster := fs.Int("cluster", 0, "run N serve daemons as child processes behind a built-in affinity-routing L7 balancer on -addr (0 = single daemon; every other flag is passed through to each backend)")
	waiters := fs.Int("waiters", 0, "maximum queued requests before shedding with 503 (0 = 4x sessions)")
	heapMB := fs.Int("heap-mb", 32, "per-session Java heap size in MiB")
	seed := fs.Int64("seed", 1, "base tag-RNG seed (session n runs with seed+n)")
	faultRing := fs.Int("fault-ring", report.DefaultSinkCapacity, "fault records retained for /metrics")
	acquireTimeout := fs.Duration("acquire-timeout", 5*time.Second, "how long a request may wait for a session")
	runTimeout := fs.Duration("run-timeout", 0, "per-request execution deadline, lease wait included (0 = none); expiry returns 504")
	stepBudget := fs.Int64("step-budget", 0, "interpreter steps allowed per inline-program run (0 = interpreter default)")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "how long graceful shutdown may drain in-flight requests")
	attackDelayThreshold := fs.Int("attack-delay-threshold", 0, "per-tenant detected faults before admissions are throttled (0 = escalating defense delay tier off)")
	attackQuarantineThreshold := fs.Int("attack-quarantine-threshold", 0, "per-tenant detected faults before admissions are refused with 429 (0 = quarantine tier off)")
	attackDelay := fs.Duration("attack-delay", time.Millisecond, "admission delay in the throttling tier")
	attackDecay := fs.Duration("attack-decay", 0, "interval after which an escalated tenant steps one defense tier back down (0 = escalation is permanent)")
	temporalPolicy := fs.String("temporal-policy", "reject", "what to do with programs whose temporal exposure is live under the requested scheme: reject, force-sync, or log")
	fs.Parse(args)

	if *cluster > 0 {
		return runCluster(fs, *cluster, *addr, *addrFile, *shutdownTimeout)
	}

	policy, err := analysis.ParseTemporalPolicy(*temporalPolicy)
	if err != nil {
		return err
	}

	srv := server.New(server.Config{
		Pool: pool.Config{
			MaxSessions: *sessions,
			Shards:      *shards,
			MaxWaiters:  *waiters,
			HeapSize:    uint64(*heapMB) << 20,
			Seed:        *seed,
			Defense: pool.DefenseConfig{
				DelayThreshold:      *attackDelayThreshold,
				QuarantineThreshold: *attackQuarantineThreshold,
				Delay:               *attackDelay,
				DecayInterval:       *attackDecay,
			},
		},
		SinkCapacity:   *faultRing,
		AcquireTimeout: *acquireTimeout,
		RunTimeout:     *runTimeout,
		StepBudget:     *stepBudget,
		TemporalPolicy: policy,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "mte4jni serve: listening on %s (%d sessions, %d MiB heap each)\n",
		bound, *sessions, *heapMB)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "mte4jni serve: shutting down")
	// The shutdown context derives from the signal context rather than a
	// fresh Background(): WithoutCancel strips the already-fired first
	// signal (which would expire the drain instantly) while keeping the
	// context lineage, the timeout bounds the drain, and a second signal
	// during the drain aborts it immediately.
	shutdownCtx, cancel := signal.NotifyContext(context.WithoutCancel(ctx), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	shutdownCtx, cancelTimeout := context.WithTimeout(shutdownCtx, *shutdownTimeout)
	defer cancelTimeout()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return <-errCh
}

// runCluster is `serve -cluster N`: N independent serve daemons spawned as
// child processes (each with its own pool, tag space and fault sink, on an
// ephemeral port) behind the built-in L7 balancer listening on -addr. Every
// explicitly set serve flag except -addr/-addr-file/-cluster is passed
// through to each backend, so `-cluster 2 -shards 4 -sessions 16` means two
// processes of four shards and sixteen sessions each.
//
// Shutdown is drain-aware and ordered: SIGTERM first drains the balancer
// (no new requests are admitted, in-flight forwards complete), then
// forwards SIGTERM to every backend — whose own graceful path drains its
// shards concurrently and asserts the per-shard lease ledgers are zero —
// and waits for them all. A backend that fails its drain fails the cluster
// exit status.
func runCluster(fs *flag.FlagSet, n int, addr, addrFile string, shutdownTimeout time.Duration) error {
	self, err := os.Executable()
	if err != nil {
		return fmt.Errorf("cluster: resolving own binary: %w", err)
	}
	tmp, err := os.MkdirTemp("", "mte4jni-cluster-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	// Forward only the flags the operator actually set; each backend keeps
	// its own defaults for the rest.
	var passthrough []string
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "addr", "addr-file", "cluster":
			return
		}
		passthrough = append(passthrough, "-"+f.Name+"="+f.Value.String())
	})

	type backend struct {
		cmd  *exec.Cmd
		done chan error
	}
	var backends []backend
	stopAll := func() {
		for _, b := range backends {
			b.cmd.Process.Signal(syscall.SIGTERM)
		}
		for _, b := range backends {
			<-b.done
		}
	}
	started := false
	defer func() {
		if !started {
			stopAll()
		}
	}()

	addrFiles := make([]string, n)
	for i := 0; i < n; i++ {
		addrFiles[i] = filepath.Join(tmp, fmt.Sprintf("addr-%d", i))
		args := append([]string{"serve", "-addr", "127.0.0.1:0", "-addr-file", addrFiles[i]}, passthrough...)
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("cluster: starting backend %d: %w", i, err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		backends = append(backends, backend{cmd: cmd, done: done})
	}

	urls := make([]string, n)
	for i := range backends {
		deadline := time.Now().Add(30 * time.Second)
		for urls[i] == "" {
			if data, err := os.ReadFile(addrFiles[i]); err == nil && len(strings.TrimSpace(string(data))) > 0 {
				urls[i] = "http://" + strings.TrimSpace(string(data))
				break
			}
			select {
			case err := <-backends[i].done:
				return fmt.Errorf("cluster: backend %d exited during startup: %v", i, err)
			default:
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("cluster: backend %d never published its address", i)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	bal, err := server.NewBalancer(server.BalancerConfig{Backends: urls})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "mte4jni serve: cluster of %d backends behind %s\n", n, bound)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- bal.Serve(ln) }()
	started = true

	select {
	case err := <-errCh:
		stopAll()
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "mte4jni serve: cluster shutting down")
	shutdownCtx, cancel := signal.NotifyContext(context.WithoutCancel(ctx), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	shutdownCtx, cancelTimeout := context.WithTimeout(shutdownCtx, shutdownTimeout)
	defer cancelTimeout()
	if err := bal.Shutdown(shutdownCtx); err != nil {
		stopAll()
		return fmt.Errorf("cluster: balancer shutdown: %w", err)
	}
	var firstErr error
	for _, b := range backends {
		b.cmd.Process.Signal(syscall.SIGTERM)
	}
	for i, b := range backends {
		if err := <-b.done; err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: backend %d shutdown: %w", i, err)
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return <-errCh
}
