package mte4jni

import (
	"errors"
	"fmt"

	"mte4jni/internal/bench"
	"mte4jni/internal/guardedcopy"
	"mte4jni/internal/jni"
	"mte4jni/internal/report"
)

// newSummaryTable adapts a header slice to the bench table constructor.
func newSummaryTable(title string, headers []string) *bench.Table {
	return bench.NewTable(title, headers...)
}

// This file drives the paper's §5.2 effectiveness experiment (Figures 3
// and 4): the test_ofb program — a Java int[18] whose raw pointer a native
// method misuses — run under all four schemes, recording whether the
// violation is detected and where the resulting report points.

// Detection re-exports the per-scheme verdict type.
type Detection = report.Detection

// Scenario enumerates the fault-injection programs.
type Scenario int

const (
	// ScenarioOOBWrite is the paper's Figure 3 program: the native method
	// writes index 21 of an int[18] obtained via GetPrimitiveArrayCritical.
	ScenarioOOBWrite Scenario = iota
	// ScenarioOOBRead reads index 21 instead — the access guarded copy
	// structurally cannot detect (§2.3 limitation 1).
	ScenarioOOBRead
	// ScenarioFarOOBWrite writes far past the array, beyond any red zone —
	// §2.3 limitation 2.
	ScenarioFarOOBWrite
	// ScenarioUseAfterRelease stores through the raw pointer after the JNI
	// release interface has run — the temporal hazard that timely tag
	// release (§3.2) turns into a detectable mismatch.
	ScenarioUseAfterRelease
	// ScenarioUnderflowWrite writes just before the array payload — inside
	// guarded copy's front red zone, and (in place) into the object header.
	// Both guarded copy and MTE detect this one, with their respective
	// localities.
	ScenarioUnderflowWrite
)

// Scenarios lists all fault-injection scenarios.
func Scenarios() []Scenario {
	return []Scenario{ScenarioOOBWrite, ScenarioOOBRead, ScenarioFarOOBWrite, ScenarioUseAfterRelease, ScenarioUnderflowWrite}
}

// String names the scenario.
func (s Scenario) String() string {
	switch s {
	case ScenarioOOBWrite:
		return "OOB write (int[18], index 21)"
	case ScenarioOOBRead:
		return "OOB read (int[18], index 21)"
	case ScenarioFarOOBWrite:
		return "far OOB write (past red zones)"
	case ScenarioUseAfterRelease:
		return "use after release"
	case ScenarioUnderflowWrite:
		return "underflow write (index -1)"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// RunDetection executes one scenario under one scheme and classifies the
// outcome. The returned error reports harness problems (not detections).
func RunDetection(scheme Scheme, sc Scenario) (Detection, error) {
	rt, err := New(Config{Scheme: scheme, HeapSize: 4 << 20})
	if err != nil {
		return Detection{}, err
	}
	env, err := rt.AttachEnv("main")
	if err != nil {
		return Detection{}, err
	}
	arr, err := env.NewIntArray(18)
	if err != nil {
		return Detection{}, err
	}

	var releaseErr error
	fault, err := env.CallNative("test_ofb", Regular, func(e *Env) error {
		p, err := e.GetPrimitiveArrayCritical(arr)
		if err != nil {
			return err
		}
		switch sc {
		case ScenarioOOBWrite:
			e.StoreInt(p.Add(21*4), 0xBAD)
			e.Syscall("getuid") // where Figure 4c's deferred report lands
			releaseErr = e.ReleasePrimitiveArrayCritical(arr, p, ReleaseDefault)
		case ScenarioOOBRead:
			_ = e.LoadInt(p.Add(21 * 4))
			e.Syscall("getuid")
			releaseErr = e.ReleasePrimitiveArrayCritical(arr, p, ReleaseDefault)
		case ScenarioFarOOBWrite:
			// 72-byte payload + red zone + slack: skips the canaries.
			e.StoreInt(p.Add(72+guardedcopy.RedZoneSize+32), 0xBAD)
			e.Syscall("getuid")
			releaseErr = e.ReleasePrimitiveArrayCritical(arr, p, ReleaseDefault)
		case ScenarioUseAfterRelease:
			releaseErr = e.ReleasePrimitiveArrayCritical(arr, p, ReleaseDefault)
			e.StoreInt(p, 0xBAD) // stale pointer
			e.Syscall("getuid")
		case ScenarioUnderflowWrite:
			e.StoreInt(p.Add(-4), 0xBAD) // index -1
			e.Syscall("getuid")
			releaseErr = e.ReleasePrimitiveArrayCritical(arr, p, ReleaseDefault)
		}
		return nil
	})
	if err != nil {
		return Detection{}, err
	}

	name := scheme.String()
	if fault != nil {
		return report.FromFault(name, fault), nil
	}
	var viol *guardedcopy.Violation
	if errors.As(releaseErr, &viol) {
		return report.FromViolation(name, viol), nil
	}
	if releaseErr != nil {
		return Detection{}, fmt.Errorf("unexpected release error under %s: %w", name, releaseErr)
	}
	return report.Undetected(name), nil
}

// EffectivenessMatrix is the full §5.2 comparison: one Detection per
// (scenario, scheme) pair, in Scenarios() × Schemes() order.
type EffectivenessMatrix struct {
	// Scenarios and Schemes give the axes.
	Scenarios []Scenario
	Schemes   []Scheme
	// Results is indexed [scenario][scheme].
	Results [][]Detection
}

// RunEffectiveness runs every scenario under every scheme.
func RunEffectiveness() (*EffectivenessMatrix, error) {
	m := &EffectivenessMatrix{Scenarios: Scenarios(), Schemes: Schemes()}
	for _, sc := range m.Scenarios {
		row := make([]Detection, 0, len(m.Schemes))
		for _, scheme := range m.Schemes {
			d, err := RunDetection(scheme, sc)
			if err != nil {
				return nil, fmt.Errorf("%v under %v: %w", sc, scheme, err)
			}
			row = append(row, d)
		}
		m.Results = append(m.Results, row)
	}
	return m, nil
}

// Summary renders the matrix as a table of "detected where" verdicts.
func (m *EffectivenessMatrix) Summary() string {
	headers := []string{"scenario"}
	for _, s := range m.Schemes {
		headers = append(headers, s.String())
	}
	t := newSummaryTable("Effectiveness of out-of-bounds checking (paper §5.2)", headers)
	for i, sc := range m.Scenarios {
		row := []string{sc.String()}
		for _, d := range m.Results[i] {
			if d.Detected {
				row = append(row, "DETECTED "+string(d.Where))
			} else {
				row = append(row, "missed")
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}

// compile-time guard: the native body type matches the jni package's.
var _ jni.NativeFunc = func(*Env) error { return nil }
