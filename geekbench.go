package mte4jni

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"mte4jni/internal/bench"
	"mte4jni/internal/jni"
	"mte4jni/internal/workloads"
)

// This file drives the paper's §5.4 common-task experiment (Figures 7 and
// 8): the 16 GeekBench-6-style CPU workloads run under each scheme, single
// core and multi core, reporting per-workload performance ratios relative
// to the no-protection scheme.

// WorkloadScale re-exports the workload sizing knob.
type WorkloadScale = workloads.Scale

// Workload scales.
const (
	// ScaleSmall is the test-sized suite.
	ScaleSmall = workloads.ScaleSmall
	// ScaleDefault is the benchmark-sized suite.
	ScaleDefault = workloads.ScaleDefault
)

// GeekbenchOptions parameterizes the suite run.
type GeekbenchOptions struct {
	// Cores is the number of concurrent copies of each workload; 1
	// reproduces Figure 7, runtime.NumCPU() Figure 8. 0 means 1.
	Cores int
	// Scale selects problem sizes (default ScaleDefault).
	Scale WorkloadScale
	// Reps and Warmup control the timing harness (defaults 5 and 1).
	Reps, Warmup int
	// Only limits the run to the named workloads (nil = all 16).
	Only []string
}

func (o *GeekbenchOptions) defaults() {
	if o.Cores == 0 {
		o.Cores = 1
	}
	if o.Reps == 0 {
		o.Reps = 5
	}
	if o.Warmup == 0 {
		o.Warmup = 1
	}
}

// GeekbenchResult holds per-workload performance ratios.
type GeekbenchResult struct {
	// Cores echoes the configured parallelism.
	Cores int
	// Workloads lists sub-item names in run order.
	Workloads []string
	// Ratios maps scheme -> per-workload performance relative to no
	// protection (1.0 = no slowdown; the paper plots these as percentages).
	Ratios map[Scheme][]float64
	// Degradation maps scheme -> overall percent performance degradation
	// (geometric mean), the numbers quoted in §5.4.
	Degradation map[Scheme]float64
}

// Figure renders the result in the shape of the paper's Figure 7 or 8.
func (r *GeekbenchResult) Figure() *bench.Figure {
	title := "Figure 7: single-core performance ratios relative to no protection"
	if r.Cores > 1 {
		title = fmt.Sprintf("Figure 8: multi-core (%d) performance ratios relative to no protection", r.Cores)
	}
	fig := bench.NewFigure(title, "workload")
	fig.Format = func(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
	for _, s := range []Scheme{GuardedCopy, MTESync, MTEAsync} {
		series := fig.AddSeries(s.String())
		for i, name := range r.Workloads {
			series.Add(name, r.Ratios[s][i])
		}
	}
	return fig
}

// geekbenchTime measures one workload under one scheme at the configured
// parallelism: Cores goroutines each drive their own instance of the
// workload against their own thread's env; the measured quantity is the
// wall-clock time until all copies finish, as on a multi-core score run.
func geekbenchTime(scheme Scheme, name string, o GeekbenchOptions) (time.Duration, error) {
	rt, err := New(Config{Scheme: scheme, HeapSize: 512 << 20})
	if err != nil {
		return 0, err
	}
	insts := make([]workloads.Workload, o.Cores)
	envs := make([]*Env, o.Cores)
	for i := 0; i < o.Cores; i++ {
		w, err := workloads.ByName(name, o.Scale)
		if err != nil {
			return 0, err
		}
		env, err := rt.AttachEnv(fmt.Sprintf("worker-%d", i))
		if err != nil {
			return 0, err
		}
		if err := w.Setup(env); err != nil {
			return 0, fmt.Errorf("%s setup under %v: %w", name, scheme, err)
		}
		insts[i], envs[i] = w, env
	}

	var firstErr error
	var errMu sync.Mutex
	run := func() {
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(o.Cores)
		for i := 0; i < o.Cores; i++ {
			go func(id int) {
				defer done.Done()
				start.Wait()
				fault, err := envs[id].CallNative(name, jni.Regular, insts[id].Run)
				errMu.Lock()
				if fault != nil && firstErr == nil {
					firstErr = fault
				}
				if err != nil && firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}(i)
		}
		start.Done()
		done.Wait()
	}
	d := bench.Measure(o.Warmup, o.Reps, run)
	if firstErr != nil {
		return 0, fmt.Errorf("%s under %v: %w", name, scheme, firstErr)
	}
	for i, w := range insts {
		if err := w.Verify(); err != nil {
			return 0, fmt.Errorf("%s under %v (copy %d): %w", name, scheme, i, err)
		}
	}
	return d, nil
}

// RunGeekbench runs the suite and returns performance ratios.
func RunGeekbench(o GeekbenchOptions) (*GeekbenchResult, error) {
	o.defaults()
	names := o.Only
	if names == nil {
		for _, w := range workloads.All(o.Scale) {
			names = append(names, w.Name())
		}
	}
	res := &GeekbenchResult{
		Cores:       o.Cores,
		Workloads:   names,
		Ratios:      make(map[Scheme][]float64),
		Degradation: make(map[Scheme]float64),
	}
	// Measure all schemes back to back per workload: on a shared or
	// frequency-scaled host, drift between distant measurements would
	// otherwise masquerade as a scheme effect.
	times := make(map[Scheme][]time.Duration)
	for _, name := range names {
		for _, scheme := range Schemes() {
			d, err := geekbenchTime(scheme, name, o)
			if err != nil {
				return nil, err
			}
			times[scheme] = append(times[scheme], d)
		}
	}
	for _, scheme := range []Scheme{GuardedCopy, MTESync, MTEAsync} {
		ratios := make([]float64, len(names))
		for i := range names {
			// Performance ratio: baseline time / scheme time (lower time =
			// higher score).
			ratios[i] = float64(times[NoProtection][i]) / float64(times[scheme][i])
		}
		res.Ratios[scheme] = ratios
		res.Degradation[scheme] = (1 - bench.GeoMean(ratios)) * 100
	}
	return res, nil
}

// NumCores returns the host's logical CPU count, the Figure 8 parallelism.
func NumCores() int { return runtime.NumCPU() }
