package mte4jni

import (
	"fmt"
	"sync"
	"testing"
)

// TestRuntimesAreIsolated runs one runtime per scheme concurrently, each
// hammered by several threads, and checks that nothing leaks across
// Runtime instances — each has its own simulated address space, heap and
// protector, so four "devices" can coexist in one process (which is exactly
// how the benchmark harness uses them).
func TestRuntimesAreIsolated(t *testing.T) {
	const threadsPerRuntime = 4
	const itersPerThread = 300

	var wg sync.WaitGroup
	for _, scheme := range Schemes() {
		scheme := scheme
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt, err := New(Config{Scheme: scheme, HeapSize: 16 << 20})
			if err != nil {
				t.Error(err)
				return
			}
			var inner sync.WaitGroup
			for i := 0; i < threadsPerRuntime; i++ {
				inner.Add(1)
				go func(id int) {
					defer inner.Done()
					env, err := rt.AttachEnv(fmt.Sprintf("t-%d", id))
					if err != nil {
						t.Error(err)
						return
					}
					arr, err := env.NewIntArray(64)
					if err != nil {
						t.Error(err)
						return
					}
					for it := 0; it < itersPerThread; it++ {
						fault, err := env.CallNative("work", Regular, func(e *Env) error {
							p, err := e.GetPrimitiveArrayCritical(arr)
							if err != nil {
								return err
							}
							e.StoreInt(p.Add(int64(it%64)*4), int32(it))
							return e.ReleasePrimitiveArrayCritical(arr, p, ReleaseDefault)
						})
						if fault != nil || err != nil {
							t.Errorf("%v thread %d iter %d: fault=%v err=%v", scheme, id, it, fault, err)
							return
						}
					}
				}(i)
			}
			inner.Wait()

			// Post-conditions per runtime.
			if p := rt.Protector(); p != nil {
				if err := p.VerifyIntegrity(); err != nil {
					t.Errorf("%v: %v", scheme, err)
				}
				if p.Refs(0) != 0 { // arbitrary address: no entry expected
					t.Errorf("%v: phantom refs", scheme)
				}
			}
			if c := rt.GuardedChecker(); c != nil {
				if c.Outstanding() != 0 {
					t.Errorf("guarded buffers leaked: %d", c.Outstanding())
				}
				if c.Stats().Violations != 0 {
					t.Errorf("spurious violations: %d", c.Stats().Violations)
				}
			}
			// GC still works after the storm.
			rt.GC()
		}()
	}
	wg.Wait()
}
