GO ?= go

.PHONY: build test race vet fmt lint lint-repo check bench bench-smoke serve-smoke redteam-smoke temporal-differential

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# gofmt -l prints the names of misformatted files; treat any output as failure.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Static analysis of the example programs: must all be provably safe (exit 0).
lint:
	$(GO) run ./cmd/mte4jni lint examples/lint

# Repo-invariant lint: tools/lintrepo's custom passes run over every package
# via the go vet -vettool protocol (noinline fault constructors, mem.Space
# encapsulation, //mte4jni:fastpath allocation/timestamp bans, atomic field
# consistency). The tool binary is built into a scratch dir so nothing
# lands in the working tree.
lint-repo:
	@tmp="$$(mktemp -d)"; \
	$(GO) build -o "$$tmp/lintrepo" ./tools/lintrepo && \
	$(GO) vet -vettool="$$tmp/lintrepo" ./...; \
	st=$$?; rm -rf "$$tmp"; exit $$st

bench:
	$(GO) test -bench=. -benchmem ./...

# Quick perf sanity: the paper's Figure 5/6 benchmarks plus the elided-vs-
# checked proof-carrying pair at -benchtime=10x, and the zero-allocation
# guards on the fault-free checked path, the guard-free elided path, and the
# TLAB hit path. Catches perf-path regressions (fast path falling off,
# allocations creeping in) in seconds rather than validating absolute numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig5SingleThread|BenchmarkFig5Elision|BenchmarkFig6MultiThread' -benchtime=10x .
	$(GO) test -run 'TestCheckedAccessAllocs|TestUnguardedAccessAllocs' ./internal/mem
	$(GO) test -run 'TestElidedDispatchAllocs' ./internal/interp
	$(GO) test -run 'TestAllocTLABHitAllocs' ./internal/heap

# End-to-end gate for the serving layer: `mte4jni serve` with the full
# 64-session pool on an ephemeral port, driven by `mte4jni load` (mixed
# faulting traffic, then a 64-worker full-capacity burst), /metrics
# reconciliation, clean SIGTERM shutdown. Also runs the sharded-admission
# section (8 shards, exact per-shard lease reconciliation + balance check),
# the cluster section (2 daemons behind the built-in L7 balancer, open-loop
# Poisson load gated on p99 SLO, drain-aware SIGTERM), and the shard-scaling
# bench gate. See scripts/serve_smoke.sh.
serve-smoke:
	GO="$(GO)" sh ./scripts/serve_smoke.sh

# Temporal-screening soundness gate: every red-team corpus attack program
# must be statically flagged with its exact window class and four-step
# provenance chain, every dynamic known-miss must be a static catch, and the
# generated fuzz corpus must produce zero false flags.
temporal-differential:
	$(GO) test -run 'TestTemporalCorpusStatic|TestTemporalDynamicMissesAreStaticCatches|TestTemporalGeneratedNoFalseFlags' -v ./internal/fuzz

# Adversarial gate: the offline `mte4jni redteam` campaign must match the
# analytic 15/16-per-probe brute-force model and account for every §2.3
# guarded-copy blind spot, then a serve+load run with the escalating
# defense enabled must reconcile every attack/throttle/reseed counter
# exactly. See scripts/redteam_smoke.sh.
redteam-smoke:
	GO="$(GO)" sh ./scripts/redteam_smoke.sh

# Extended tier-1 gate (see ROADMAP.md).
check: fmt vet lint-repo race lint temporal-differential bench-smoke serve-smoke redteam-smoke
	@echo "check: ok"
