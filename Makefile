GO ?= go

.PHONY: build test race vet fmt lint check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# gofmt -l prints the names of misformatted files; treat any output as failure.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Static analysis of the example programs: must all be provably safe (exit 0).
lint:
	$(GO) run ./cmd/mte4jni lint examples/lint

bench:
	$(GO) test -bench=. -benchmem ./...

# Extended tier-1 gate (see ROADMAP.md).
check: fmt vet race lint
	@echo "check: ok"
