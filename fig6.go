package mte4jni

import (
	"fmt"
	"sync"
	"time"

	"mte4jni/internal/bench"
)

// This file drives the paper's §5.3.2 multi-thread JNI overhead experiment
// (Figure 6): 64 threads concurrently run a native method that repeatedly
// (10000 times) acquires, bulk-reads and releases an int[1024]. In the
// "same array" test all threads hammer one array (contending on MTE4JNI's
// per-object lock); in the "different arrays" test each thread has its own
// (contending, at most, on the hash-table locks). Five protected schemes
// are compared, each normalized to no protection: MTE4JNI two-tier
// sync/async, MTE4JNI with a naive global lock sync/async, and guarded
// copy.

// Fig6Variant identifies one bar group of Figure 6.
type Fig6Variant struct {
	// Display is the legend name.
	Display string
	// Scheme is the base scheme.
	Scheme Scheme
	// Locking applies to MTE schemes.
	Locking Locking
}

// Fig6Variants returns the five protected configurations of Figure 6 plus
// the baseline (first entry).
func Fig6Variants() []Fig6Variant {
	return []Fig6Variant{
		{"No protection", NoProtection, TwoTierLocking},
		{"MTE4JNI+Sync", MTESync, TwoTierLocking},
		{"MTE4JNI+Async", MTEAsync, TwoTierLocking},
		{"MTE4JNI+Sync+global_lock", MTESync, GlobalLocking},
		{"MTE4JNI+Async+global_lock", MTEAsync, GlobalLocking},
		{"Guarded Copy", GuardedCopy, TwoTierLocking},
	}
}

// Fig6Options parameterizes the experiment; zero values select the paper's
// settings.
type Fig6Options struct {
	// Threads is the number of concurrent native threads (default 64).
	Threads int
	// Iters is the per-thread acquire/read/release count (default 10000).
	Iters int
	// ArrayLen is the array length in ints (default 1024).
	ArrayLen int
	// Reps and Warmup control the timing harness (defaults 5 and 1).
	Reps, Warmup int
}

func (o *Fig6Options) defaults() {
	if o.Threads == 0 {
		o.Threads = 64
	}
	if o.Iters == 0 {
		o.Iters = 10000
	}
	if o.ArrayLen == 0 {
		o.ArrayLen = 1024
	}
	if o.Reps == 0 {
		o.Reps = 5
	}
	if o.Warmup == 0 {
		o.Warmup = 1
	}
}

// Contention captures the protector's lock statistics for one run: how
// many table-lock and object-lock acquisitions found the lock held. On
// hosts with little hardware parallelism the wall-clock gap between
// two-tier and global locking collapses (only one thread runs at a time),
// but these counters still expose the §5.3.2 difference.
type Contention struct {
	// Table and Object are contended-acquisition counts.
	Table, Object int64
}

// Fig6Result holds normalized execution times for both tests.
type Fig6Result struct {
	// Variants lists the measured configurations (baseline excluded).
	Variants []Fig6Variant
	// SameArray and DifferentArrays are slowdown ratios vs no protection,
	// index-aligned with Variants.
	SameArray, DifferentArrays []float64
	// SameArrayContention and DifferentArraysContention carry the lock
	// statistics for the MTE variants (zero for guarded copy), index-
	// aligned with Variants.
	SameArrayContention, DifferentArraysContention []Contention
}

// Figure renders the result in the shape of the paper's Figure 6.
func (r *Fig6Result) Figure() *bench.Figure {
	fig := bench.NewFigure("Figure 6: multi-thread concurrent reads, normalized to no protection", "test")
	for i, v := range r.Variants {
		s := fig.AddSeries(v.Display)
		s.Add("Same Array", r.SameArray[i])
		s.Add("Different Array", r.DifferentArrays[i])
	}
	return fig
}

// fig6Run measures the wall-clock time for all threads to finish under one
// configuration. sameArray selects the contention pattern.
func fig6Run(v Fig6Variant, sameArray bool, o Fig6Options) (time.Duration, Contention, error) {
	return fig6RunConfigured(v, sameArray, o, 0)
}

// fig6RunConfigured additionally overrides the protector's hash-table count
// (0 keeps the paper's 16); the hash-table ablation sweeps it.
func fig6RunConfigured(v Fig6Variant, sameArray bool, o Fig6Options, hashTables int) (time.Duration, Contention, error) {
	rt, err := New(Config{
		Scheme:     v.Scheme,
		Locking:    v.Locking,
		HashTables: hashTables,
		HeapSize:   uint64(64<<20) + uint64(o.Threads*o.ArrayLen*8),
	})
	if err != nil {
		return 0, Contention{}, err
	}

	// Arrays and environments are created once; the timed section is the
	// native work itself, as on the device.
	arrays := make([]*Object, o.Threads)
	envs := make([]*Env, o.Threads)
	var shared *Object
	for i := 0; i < o.Threads; i++ {
		envs[i], err = rt.AttachEnv(fmt.Sprintf("native-%d", i))
		if err != nil {
			return 0, Contention{}, err
		}
		if sameArray {
			if shared == nil {
				shared, err = envs[i].NewIntArray(o.ArrayLen)
				if err != nil {
					return 0, Contention{}, err
				}
			}
			arrays[i] = shared
		} else {
			arrays[i], err = envs[i].NewIntArray(o.ArrayLen)
			if err != nil {
				return 0, Contention{}, err
			}
		}
	}

	scratchBytes := o.ArrayLen * 4
	var firstErr error
	var errMu sync.Mutex
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	run := func() {
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(o.Threads)
		for i := 0; i < o.Threads; i++ {
			go func(id int) {
				defer done.Done()
				env, arr := envs[id], arrays[id]
				scratch := make([]byte, scratchBytes)
				start.Wait()
				var sink int64
				fault, err := env.CallNative("readArray", Regular, func(e *Env) error {
					for it := 0; it < o.Iters; it++ {
						p, err := e.GetPrimitiveArrayCritical(arr)
						if err != nil {
							return err
						}
						e.CopyToNative(scratch, p)
						// The "read": sum the elements natively, the work
						// the paper's native method exists to do.
						for i := 0; i+4 <= len(scratch); i += 4 {
							sink += int64(int32(uint32(scratch[i]) | uint32(scratch[i+1])<<8 |
								uint32(scratch[i+2])<<16 | uint32(scratch[i+3])<<24))
						}
						if err := e.ReleasePrimitiveArrayCritical(arr, p, JNIAbort); err != nil {
							return err
						}
					}
					return nil
				})
				_ = sink
				if fault != nil {
					setErr(fault)
				}
				if err != nil {
					setErr(err)
				}
			}(i)
		}
		start.Done()
		done.Wait()
	}

	d := bench.Measure(o.Warmup, o.Reps, run)
	if firstErr != nil {
		return 0, Contention{}, fmt.Errorf("fig6 %s: %w", v.Display, firstErr)
	}
	var cont Contention
	if p := rt.Protector(); p != nil {
		st := p.Stats()
		cont = Contention{Table: st.TableLockContended, Object: st.ObjectLockContended}
	}
	return d, cont, nil
}

// RunFig6 runs both tests across all configurations and normalizes.
func RunFig6(o Fig6Options) (*Fig6Result, error) {
	o.defaults()
	variants := Fig6Variants()
	res := &Fig6Result{Variants: variants[1:]}

	var baseSame, baseDiff time.Duration
	for i, v := range variants {
		same, sameCont, err := fig6Run(v, true, o)
		if err != nil {
			return nil, err
		}
		diff, diffCont, err := fig6Run(v, false, o)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			baseSame, baseDiff = same, diff
			continue
		}
		res.SameArray = append(res.SameArray, float64(same)/float64(baseSame))
		res.DifferentArrays = append(res.DifferentArrays, float64(diff)/float64(baseDiff))
		res.SameArrayContention = append(res.SameArrayContention, sameCont)
		res.DifferentArraysContention = append(res.DifferentArraysContention, diffCont)
	}
	return res, nil
}

// ContentionTable renders the per-variant lock statistics.
func (r *Fig6Result) ContentionTable() *bench.Table {
	t := bench.NewTable("Figure 6 auxiliary: contended lock acquisitions (counts per full run)",
		"variant", "same array (table/object)", "different arrays (table/object)")
	for i, v := range r.Variants {
		if i >= len(r.SameArrayContention) {
			break
		}
		sc, dc := r.SameArrayContention[i], r.DifferentArraysContention[i]
		t.AddRow(v.Display,
			fmt.Sprintf("%d / %d", sc.Table, sc.Object),
			fmt.Sprintf("%d / %d", dc.Table, dc.Object))
	}
	return t
}
