package mte4jni

import (
	"strings"
	"testing"

	"mte4jni/internal/mte"
	"mte4jni/internal/report"
)

// Tests for the extensions beyond the paper: underflow scenario, poison
// tags, neighbour exclusion through the facade.

func TestUnderflowScenarioMatrix(t *testing.T) {
	// Underflow is the one OOB flavour both protected schemes catch, each
	// with its own locality.
	if d, err := RunDetection(GuardedCopy, ScenarioUnderflowWrite); err != nil || !d.Detected || d.Where != report.AtRelease {
		t.Fatalf("guarded copy underflow: %+v err=%v", d, err)
	}
	if d, err := RunDetection(MTESync, ScenarioUnderflowWrite); err != nil || !d.Detected || d.Where != report.AtFaultingInstruction {
		t.Fatalf("MTE sync underflow: %+v err=%v", d, err)
	}
	if d, err := RunDetection(MTEAsync, ScenarioUnderflowWrite); err != nil || !d.Detected || d.Where != report.AtNextSyscall {
		t.Fatalf("MTE async underflow: %+v err=%v", d, err)
	}
	if d, err := RunDetection(NoProtection, ScenarioUnderflowWrite); err != nil || d.Detected {
		t.Fatalf("no-protection underflow: %+v err=%v", d, err)
	}
}

func TestPoisonOnReleaseThroughFacade(t *testing.T) {
	rt, err := New(Config{Scheme: MTESync, PoisonOnRelease: true, HeapSize: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	env, err := rt.AttachEnv("main")
	if err != nil {
		t.Fatal(err)
	}
	arr, _ := env.NewIntArray(8)
	var stale Ptr
	fault, err := env.CallNative("uar_setup", Regular, func(e *Env) error {
		p, err := e.GetPrimitiveArrayCritical(arr)
		if err != nil {
			return err
		}
		stale = p
		return e.ReleasePrimitiveArrayCritical(arr, p, ReleaseDefault)
	})
	if fault != nil || err != nil {
		t.Fatalf("setup: fault=%v err=%v", fault, err)
	}
	fault, err = env.CallNative("uar_use", Regular, func(e *Env) error {
		e.StoreInt(stale, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fault == nil || fault.MemTag != mte.PoisonTag {
		t.Fatalf("stale use fault = %v, want poison mem tag", fault)
	}
	rep := report.FormatFault(fault)
	if !strings.Contains(rep, "use-after-release") {
		t.Fatalf("poisoned fault report lacks the UAR note:\n%s", rep)
	}
}

func TestNeighborExclusionThroughFacade(t *testing.T) {
	rt, err := New(Config{Scheme: MTESync, TagNeighborExclusion: true, HeapSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	env, _ := rt.AttachEnv("main")
	// Adjacent-object OOB must be caught on every trial (no 1/15 luck).
	for trial := 0; trial < 64; trial++ {
		a, _ := env.NewArray(KindByte, 16)
		b, _ := env.NewArray(KindByte, 16)
		off := int64(b.DataBegin() - a.DataBegin())
		fault, err := env.CallNative("adj", Regular, func(e *Env) error {
			pa, err := e.GetPrimitiveArrayCritical(a)
			if err != nil {
				return err
			}
			pb, err := e.GetPrimitiveArrayCritical(b)
			if err != nil {
				return err
			}
			e.StoreByte(pa.Add(off), 1)
			_ = pb
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if fault == nil {
			t.Fatalf("trial %d: adjacent OOB missed despite neighbour exclusion", trial)
		}
	}
}
