package mte4jni

// The benchmark-snapshot suite behind `mte4jni bench`: a curated set of the
// performance-critical paths (the paper's Figure 5/6 workloads plus the
// access-engine and allocator microbenchmarks), self-timed and emitted as a
// bench.Snapshot so runs can be committed (BENCH_*.json) and diffed across
// changes without the go-test harness. The names match the corresponding
// `go test -bench` benchmarks where one exists, so snapshots parsed from
// either source compare cleanly.

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"mte4jni/internal/analysis"
	"mte4jni/internal/bench"
	"mte4jni/internal/cpu"
	"mte4jni/internal/heap"
	"mte4jni/internal/interp"
	"mte4jni/internal/mem"
	"mte4jni/internal/mte"
)

// BenchSuiteOptions configures RunBenchSuite.
type BenchSuiteOptions struct {
	// Quick shrinks per-case measuring time (~20ms instead of ~250ms) for
	// smoke runs; numbers are noisier but the suite finishes in seconds.
	Quick bool
	// Note is stored in the snapshot (e.g. "after: TLB+SWAR engine").
	Note string
}

// suiteCase is one benchmark: setup returns the per-iteration body (running
// n iterations) and the bytes processed per iteration (0 when throughput is
// meaningless for the case).
type suiteCase struct {
	name  string
	setup func() (fn func(n int) error, bytesPerOp int64, err error)
	// post, when set, runs after the case is measured and may annotate the
	// result with end-of-run gauges (e.g. resident tag bytes). It must not
	// mutate the timing fields.
	post func(*bench.Result)
}

// RunBenchSuite measures every suite case and returns the snapshot.
func RunBenchSuite(o BenchSuiteOptions) (*bench.Snapshot, error) {
	target := 250 * time.Millisecond
	if o.Quick {
		target = 20 * time.Millisecond
	}
	snap := bench.NewSnapshot(o.Note)
	for _, c := range suiteCases() {
		// go test -bench replaces spaces in sub-benchmark names with
		// underscores; do the same so snapshots from either source diff
		// cleanly.
		c.name = strings.ReplaceAll(c.name, " ", "_")
		res, err := runSuiteCase(c, target)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", c.name, err)
		}
		if c.post != nil {
			c.post(&res)
		}
		snap.Add(res)
	}
	return snap, nil
}

// runSuiteCase times one case: a warmup iteration, then batches grown until
// the timed batch is long enough to trust, with Go allocator traffic read
// from runtime.MemStats around the final batch.
func runSuiteCase(c suiteCase, target time.Duration) (bench.Result, error) {
	fn, bytesPerOp, err := c.setup()
	if err != nil {
		return bench.Result{}, err
	}
	if err := fn(1); err != nil { // warmup
		return bench.Result{}, err
	}
	n := 1
	for {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := fn(n); err != nil {
			return bench.Result{}, err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if elapsed >= target || n >= 1<<30 {
			perOp := float64(elapsed.Nanoseconds()) / float64(n)
			r := bench.Result{
				Name:        c.name,
				Iters:       n,
				NsPerOp:     perOp,
				AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
				BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
			}
			if bytesPerOp > 0 && elapsed > 0 {
				r.MBPerS = float64(bytesPerOp) * float64(n) / elapsed.Seconds() / 1e6
			}
			return r, nil
		}
		// Grow toward the target in one or two more steps.
		grow := int(float64(target)/float64(elapsed)*float64(n)*1.2) + 1
		if grow > 100*n {
			grow = 100 * n
		}
		n = grow
	}
}

// suiteCases builds the full suite.
func suiteCases() []suiteCase {
	var cases []suiteCase

	// Figure 5: one native acquire/copy/release of int[4096] per iteration,
	// per scheme — the single-thread JNI overhead experiment.
	for _, scheme := range Schemes() {
		scheme := scheme
		const n = 1 << 12
		cases = append(cases, suiteCase{
			name: fmt.Sprintf("Fig5SingleThread/%s/n=2^12", scheme),
			setup: func() (func(int) error, int64, error) {
				rt, err := New(Config{Scheme: scheme, HeapSize: 16 << 20})
				if err != nil {
					return nil, 0, err
				}
				env, err := rt.AttachEnv("bench")
				if err != nil {
					return nil, 0, err
				}
				src, err := env.NewIntArray(n)
				if err != nil {
					return nil, 0, err
				}
				dst, err := env.NewIntArray(n)
				if err != nil {
					return nil, 0, err
				}
				return func(iters int) error {
					for i := 0; i < iters; i++ {
						fault, err := env.CallNative("copyArrays", Regular, func(e *Env) error {
							return copyNative(e, src, dst, n*4)
						})
						if fault != nil {
							return fmt.Errorf("fault: %v", fault)
						}
						if err != nil {
							return err
						}
					}
					return nil
				}, n * 4, nil
			},
		})
	}

	// Figure 6: one full 8-thread × 200-iteration contention run per
	// iteration, per variant and sharing pattern.
	for _, v := range Fig6Variants() {
		for _, same := range []bool{true, false} {
			v, same := v, same
			test := "different-arrays"
			if same {
				test = "same-array"
			}
			cases = append(cases, suiteCase{
				name: fmt.Sprintf("Fig6MultiThread/%s/%s", v.Display, test),
				setup: func() (func(int) error, int64, error) {
					o := Fig6Options{Threads: 8, Iters: 200, ArrayLen: 1024, Reps: 1, Warmup: 0}
					o.defaults()
					return func(iters int) error {
						for i := 0; i < iters; i++ {
							if _, _, err := fig6Run(v, same, o); err != nil {
								return err
							}
						}
						return nil
					}, 0, nil
				},
			})
		}
	}

	// Access-engine microbenchmarks: the simulated load/store unit on the
	// fault-free checked path.
	cases = append(cases,
		suiteCase{
			name: "mem/Load64Checked",
			setup: func() (func(int) error, int64, error) {
				s, m, ctx, err := suiteSpace()
				if err != nil {
					return nil, 0, err
				}
				p := mte.MakePtr(m.Base(), 0x5)
				return func(iters int) error {
					for i := 0; i < iters; i++ {
						if _, f := s.Load64(ctx, p); f != nil {
							return fmt.Errorf("fault: %v", f)
						}
					}
					return nil
				}, 8, nil
			},
		},
		suiteCase{
			name: "mem/CopyOutChecked/n=16384",
			setup: func() (func(int) error, int64, error) {
				s, m, ctx, err := suiteSpace()
				if err != nil {
					return nil, 0, err
				}
				p := mte.MakePtr(m.Base(), 0x5)
				buf := make([]byte, 16384)
				return func(iters int) error {
					for i := 0; i < iters; i++ {
						if f := s.CopyOut(ctx, p, buf); f != nil {
							return fmt.Errorf("fault: %v", f)
						}
					}
					return nil
				}, 16384, nil
			},
		},
		suiteCase{
			name: "mem/MoveChecked/n=16384",
			setup: func() (func(int) error, int64, error) {
				s, m, ctx, err := suiteSpace()
				if err != nil {
					return nil, 0, err
				}
				src := mte.MakePtr(m.Base(), 0x5)
				dst := mte.MakePtr(m.Base()+1<<19, 0x5)
				return func(iters int) error {
					for i := 0; i < iters; i++ {
						if f := s.Move(ctx, dst, src, 16384); f != nil {
							return fmt.Errorf("fault: %v", f)
						}
					}
					return nil
				}, 16384, nil
			},
		},
		suiteCase{
			name: "mem/SetTagRange/n=16384",
			setup: func() (func(int) error, int64, error) {
				_, m, _, err := suiteSpace()
				if err != nil {
					return nil, 0, err
				}
				return func(iters int) error {
					for i := 0; i < iters; i++ {
						if _, err := m.SetTagRange(m.Base(), m.Base()+16384, mte.Tag(i&0xF)); err != nil {
							return err
						}
					}
					return nil
				}, 16384 / mte.GranuleSize, nil
			},
		},
	)

	// Allocator microbenchmarks: the TLAB fast path, serial and under 8-way
	// concurrency.
	cases = append(cases,
		suiteCase{
			name: "heap/AllocFreeSerial/size=256",
			setup: func() (func(int) error, int64, error) {
				h, err := heap.New(mem.NewSpace(), heap.Config{Size: 32 << 20, Alignment: 16})
				if err != nil {
					return nil, 0, err
				}
				return func(iters int) error {
					for i := 0; i < iters; i++ {
						a, err := h.Alloc(256)
						if err != nil {
							return err
						}
						if err := h.Free(a); err != nil {
							return err
						}
					}
					return nil
				}, 0, nil
			},
		},
		suiteCase{
			name: "heap/AllocFreeParallel8/size=256",
			setup: func() (func(int) error, int64, error) {
				h, err := heap.New(mem.NewSpace(), heap.Config{Size: 32 << 20, Alignment: 16})
				if err != nil {
					return nil, 0, err
				}
				return func(iters int) error {
					const workers = 8
					var wg sync.WaitGroup
					errs := make([]error, workers)
					for w := 0; w < workers; w++ {
						wg.Add(1)
						go func(w int) {
							defer wg.Done()
							for i := 0; i < iters/workers+1; i++ {
								a, err := h.Alloc(256)
								if err != nil {
									errs[w] = err
									return
								}
								if err := h.Free(a); err != nil {
									errs[w] = err
									return
								}
							}
						}(w)
					}
					wg.Wait()
					for _, err := range errs {
						if err != nil {
							return err
						}
					}
					return nil
				}, 0, nil
			},
		},
	)

	// The paper's core operation: Algorithm 1 + Algorithm 2 on a 1 KiB
	// object, per locking scheme.
	for _, locking := range []Locking{TwoTierLocking, GlobalLocking} {
		locking := locking
		cases = append(cases, suiteCase{
			name: fmt.Sprintf("micro/TagAllocRelease/%s", locking),
			setup: func() (func(int) error, int64, error) {
				rt, err := New(Config{Scheme: MTESync, Locking: locking, HeapSize: 16 << 20})
				if err != nil {
					return nil, 0, err
				}
				env, err := rt.AttachEnv("bench")
				if err != nil {
					return nil, 0, err
				}
				arr, err := env.NewIntArray(256)
				if err != nil {
					return nil, 0, err
				}
				p := rt.Protector()
				th := env.Thread()
				return func(iters int) error {
					for i := 0; i < iters; i++ {
						ptr, err := p.Acquire(th, arr, arr.DataBegin(), arr.DataEnd())
						if err != nil {
							return err
						}
						if err := p.Release(th, arr, ptr, arr.DataBegin(), arr.DataEnd(), ReleaseDefault); err != nil {
							return err
						}
					}
					return nil
				}, 0, nil
			},
		})
	}

	// Proof-carrying elision on the screened-safe hot loop: the same program
	// executed fully checked versus with its compiled elision mask bound —
	// the measurable win of discharging the tag-check guards statically.
	for _, elide := range []bool{false, true} {
		elide := elide
		variant := "checked"
		if elide {
			variant = "elided"
		}
		cases = append(cases, suiteCase{
			name: "Fig5Elision/" + variant,
			setup: func() (func(int) error, int64, error) {
				p := elisionBenchProgram()
				v := analysis.Screen(p)
				if v.Verdict != analysis.VerdictSafe || v.Elision == nil {
					return nil, 0, fmt.Errorf("elision bench program not screened safe: %+v", v)
				}
				rt, err := New(Config{Scheme: MTESync, HeapSize: 256 << 20})
				if err != nil {
					return nil, 0, err
				}
				env, err := rt.AttachEnv("bench")
				if err != nil {
					return nil, 0, err
				}
				ip := interp.New(env)
				// One interpreter runs every iteration; lift the cumulative
				// step-budget safety net out of the measurement's way.
				ip.MaxSteps = 1 << 62
				for name, sum := range p.Natives {
					ip.RegisterNative(name, interp.NativeMethod{Kind: sum.Kind, Body: sum.Materialize()})
				}
				if elide {
					if err := v.Elision.ValidateBinding(p); err != nil {
						return nil, 0, err
					}
					ip.BindElision(v.Elision.Mask())
				}
				return func(iters int) error {
					for i := 0; i < iters; i++ {
						ret, fault, err := ip.InvokeCtx(nil, p.Method)
						if fault != nil {
							return fmt.Errorf("fault: %v", fault)
						}
						if err != nil {
							return err
						}
						if ret != 7 {
							return fmt.Errorf("ret = %d, want 7", ret)
						}
					}
					return nil
				}, elisionBenchBytesPerOp, nil
			},
		})
	}

	// Guard-free access-engine microbenchmarks: the same load/store unit with
	// the SWAR tag compare elided, the per-access cost a discharged proof
	// buys back.
	cases = append(cases,
		suiteCase{
			name: "mem/Load64Unguarded",
			setup: func() (func(int) error, int64, error) {
				s, m, ctx, err := suiteSpace()
				if err != nil {
					return nil, 0, err
				}
				p := mte.MakePtr(m.Base(), 0x5)
				return func(iters int) error {
					for i := 0; i < iters; i++ {
						if _, f := s.Load64Unguarded(ctx, p); f != nil {
							return fmt.Errorf("fault: %v", f)
						}
					}
					return nil
				}, 8, nil
			},
		},
		suiteCase{
			name: "mem/CopyOutUnguarded/n=16384",
			setup: func() (func(int) error, int64, error) {
				s, m, ctx, err := suiteSpace()
				if err != nil {
					return nil, 0, err
				}
				p := mte.MakePtr(m.Base(), 0x5)
				buf := make([]byte, 16384)
				return func(iters int) error {
					for i := 0; i < iters; i++ {
						if f := s.CopyOutUnguarded(ctx, p, buf); f != nil {
							return fmt.Errorf("fault: %v", f)
						}
					}
					return nil
				}, 16384, nil
			},
		},
	)

	// The serving layer's admission screen on an inline program: the cold
	// path (parse + abstract interpretation, what a verdict-cache miss
	// costs) versus a verdict-cache hit (one hash + map lookup, what every
	// resubmission costs).
	raw := screenBenchProgram()
	cases = append(cases,
		suiteCase{
			name: "micro/ScreenInline/cold",
			setup: func() (func(int) error, int64, error) {
				return func(iters int) error {
					for i := 0; i < iters; i++ {
						p, err := analysis.ParseProgram(raw)
						if err != nil {
							return err
						}
						if v := analysis.Screen(p); !v.Rejected() {
							return fmt.Errorf("screen bench program not rejected: %+v", v)
						}
					}
					return nil
				}, 0, nil
			},
		},
		suiteCase{
			name: "micro/ScreenInline/cached",
			setup: func() (func(int) error, int64, error) {
				c := analysis.NewScreenCache(0)
				if _, _, err := c.ScreenBytes(raw); err != nil {
					return nil, 0, err
				}
				return func(iters int) error {
					for i := 0; i < iters; i++ {
						v, hit, err := c.ScreenBytes(raw)
						if err != nil {
							return err
						}
						if !hit || !v.Rejected() {
							return fmt.Errorf("expected cached rejection, got hit=%v %+v", hit, v)
						}
					}
					return nil
				}, 0, nil
			},
		},
	)

	// Hierarchical tag-storage footprint: a session-shaped working set — a
	// 64 MiB heap with 32 pinned (acquired, hence tagged) int[1024] arrays
	// and steady acquire/release churn on one more. The post hook records
	// the two-level store's resident tag bytes at end of run against what
	// the flat per-granule array would hold resident for the same mappings;
	// PR 7's headline claim is the >=10x gap between the two.
	var footSpace *mem.Space
	cases = append(cases, suiteCase{
		name: "mem/TagFootprint/session",
		setup: func() (func(int) error, int64, error) {
			rt, err := New(Config{Scheme: MTESync, HeapSize: 64 << 20})
			if err != nil {
				return nil, 0, err
			}
			footSpace = rt.VM().Space
			env, err := rt.AttachEnv("bench")
			if err != nil {
				return nil, 0, err
			}
			p := rt.Protector()
			th := env.Thread()
			for i := 0; i < 32; i++ {
				arr, err := env.NewIntArray(1024)
				if err != nil {
					return nil, 0, err
				}
				if _, err := p.Acquire(th, arr, arr.DataBegin(), arr.DataEnd()); err != nil {
					return nil, 0, err
				}
			}
			churn, err := env.NewIntArray(1024)
			if err != nil {
				return nil, 0, err
			}
			return func(iters int) error {
				for i := 0; i < iters; i++ {
					ptr, err := p.Acquire(th, churn, churn.DataBegin(), churn.DataEnd())
					if err != nil {
						return err
					}
					if err := p.Release(th, churn, ptr, churn.DataBegin(), churn.DataEnd(), ReleaseDefault); err != nil {
						return err
					}
				}
				return nil
			}, 0, nil
		},
		post: func(r *bench.Result) {
			ts := footSpace.TagStats()
			r.TagBytesPerOp = float64(ts.BytesResident)
			r.TagBytesFlatPerOp = float64(ts.BytesFlatEquiv)
		},
	})

	return cases
}

// screenBenchProgram marshals the admission-screen benchmark input: a
// use-after-release program the screen provably rejects, shaped like the
// serving layer's canned probes.
func screenBenchProgram() []byte {
	p := &analysis.Program{
		Method: &interp.Method{
			Name: "screen_bench",
			Code: []interp.Inst{
				{Op: interp.OpConst, A: 16},
				{Op: interp.OpNewArray, A: 0},
				{Op: interp.OpCallNative, A: 0, B: 0},
				{Op: interp.OpConst, A: 42},
				{Op: interp.OpReturn},
			},
			MaxLocals: 1, MaxRefs: 1,
			NativeNames: []string{"stale"},
		},
		Natives: map[string]analysis.NativeSummary{
			"stale": {MinOff: 0, MaxOff: 63, UseAfterRelease: true},
		},
	}
	raw, err := analysis.MarshalProgram(p)
	if err != nil {
		panic(err) // static input: cannot fail
	}
	return raw
}

// Elision benchmark program shape: a 64-iteration loop over 16 proven
// in-bounds aget and 16 aput sites on an int[16], then one in-payload
// native call — every heap access in it elides under the compiled mask.
const (
	elisionBenchArrLen = 16
	elisionBenchSites  = 16
	elisionBenchLoops  = 64
	// Bytes of proven array traffic per run: 4 bytes per access, one aget
	// and one aput per site per loop iteration.
	elisionBenchBytesPerOp = int64(elisionBenchLoops * elisionBenchSites * 2 * 4)
)

// elisionBenchProgram builds the proof-carrying elision benchmark input: a
// screened-safe program whose hot loop is nothing but statically proven
// in-bounds array traffic. Under the elision mask every access dispatches
// as a guard-free superinstruction; fully checked, every access pays the
// SWAR tag compare — the pair isolates what the proofs buy.
func elisionBenchProgram() *analysis.Program {
	code := []interp.Inst{
		{Op: interp.OpConst, A: elisionBenchArrLen},
		{Op: interp.OpNewArray, A: 0},
		{Op: interp.OpConst, A: elisionBenchLoops},
		{Op: interp.OpStore, A: 0},
	}
	loopStart := int64(len(code))
	for i := 0; i < elisionBenchSites; i++ {
		idx := int64(i % elisionBenchArrLen)
		code = append(code,
			interp.Inst{Op: interp.OpConst, A: idx},
			interp.Inst{Op: interp.OpArrayGet, A: 0},
			interp.Inst{Op: interp.OpStore, A: 1},
			interp.Inst{Op: interp.OpConst, A: idx},
			interp.Inst{Op: interp.OpConst, A: 7},
			interp.Inst{Op: interp.OpArrayPut, A: 0},
		)
	}
	exit := int64(len(code)) + 7
	code = append(code,
		interp.Inst{Op: interp.OpLoad, A: 0},
		interp.Inst{Op: interp.OpConst, A: 1},
		interp.Inst{Op: interp.OpSub},
		interp.Inst{Op: interp.OpStore, A: 0},
		interp.Inst{Op: interp.OpLoad, A: 0},
		interp.Inst{Op: interp.OpJmpIfZero, A: exit},
		interp.Inst{Op: interp.OpJmp, A: loopStart},
		// exit:
		interp.Inst{Op: interp.OpCallNative, A: 0, B: 0},
		interp.Inst{Op: interp.OpConst, A: 7},
		interp.Inst{Op: interp.OpReturn},
	)
	return &analysis.Program{
		Method: &interp.Method{
			Name:        "fig5_elide",
			Code:        code,
			MaxLocals:   2,
			MaxRefs:     1,
			NativeNames: []string{"bulk"},
		},
		Natives: map[string]analysis.NativeSummary{
			// In-payload: int[16] is 64 bytes, granule-rounded end 64.
			"bulk": {MinOff: 0, MaxOff: 63},
		},
	}
}

// suiteSpace builds the standard microbenchmark space: a 1 MiB tagged
// mapping (tag 0x5) and a sync-checking context.
func suiteSpace() (*mem.Space, *mem.Mapping, *cpu.Context, error) {
	s := mem.NewSpace()
	m, err := s.Map("bench", 1<<20, mem.ProtRead|mem.ProtWrite|mem.ProtMTE)
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := m.SetTagRange(m.Base(), m.End(), 0x5); err != nil {
		return nil, nil, nil, err
	}
	ctx := cpu.New("bench", mte.TCFSync)
	ctx.SetTCO(false)
	return s, m, ctx, nil
}
