module mte4jni

go 1.22
