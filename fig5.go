package mte4jni

import (
	"fmt"

	"mte4jni/internal/bench"
)

// This file drives the paper's §5.3.1 single-thread JNI overhead experiment
// (Figure 5): a native method obtains raw pointers to two Java int arrays
// via GetPrimitiveArrayCritical, copies one into the other, and releases
// both; array lengths sweep 2^1..2^12 ints; each scheme's time is
// normalized to the no-protection scheme.

// Fig5Options parameterizes the sweep.
type Fig5Options struct {
	// MinPow and MaxPow bound the array-length exponents (default 1..12,
	// the paper's range).
	MinPow, MaxPow int
	// Warmup and Reps control the timing harness (defaults 3 and 11).
	Warmup, Reps int
	// InnerIters repeats the native copy inside one timed run to lift tiny
	// lengths above the timer resolution (default 64).
	InnerIters int
}

func (o *Fig5Options) defaults() {
	if o.MaxPow == 0 {
		o.MinPow, o.MaxPow = 1, 12
	}
	if o.Warmup == 0 {
		o.Warmup = 3
	}
	if o.Reps == 0 {
		o.Reps = 11
	}
	if o.InnerIters == 0 {
		o.InnerIters = 64
	}
}

// Fig5Result holds the normalized ratios per scheme and length.
type Fig5Result struct {
	// Lengths are the array lengths in ints.
	Lengths []int
	// Ratios maps scheme -> per-length slowdown vs no protection.
	Ratios map[Scheme][]float64
	// Average maps scheme -> arithmetic mean slowdown across lengths (the
	// paper reports 26.58x / 2.36x / 2.24x here).
	Average map[Scheme]float64
}

// Figure renders the result in the shape of the paper's Figure 5.
func (r *Fig5Result) Figure() *bench.Figure {
	fig := bench.NewFigure("Figure 5: single-thread copy time, normalized to no protection", "array length (ints)")
	order := []Scheme{GuardedCopy, MTESync, MTEAsync}
	for _, s := range order {
		series := fig.AddSeries(s.String())
		for i, n := range r.Lengths {
			series.Add(fmt.Sprintf("2^%d=%d", i+log2(r.Lengths[0]), n), r.Ratios[s][i])
		}
	}
	return fig
}

// log2 of a positive power of two.
func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// copyNative is the Figure 5 native method: acquire both arrays, memcpy,
// release both.
func copyNative(env *Env, src, dst *Object, bytes int) error {
	ps, err := env.GetPrimitiveArrayCritical(src)
	if err != nil {
		return err
	}
	pd, err := env.GetPrimitiveArrayCritical(dst)
	if err != nil {
		return err
	}
	env.Memcpy(pd, ps, bytes)
	if err := env.ReleasePrimitiveArrayCritical(dst, pd, ReleaseDefault); err != nil {
		return err
	}
	return env.ReleasePrimitiveArrayCritical(src, ps, ReleaseDefault)
}

// fig5Time measures the median duration of the native copy under one scheme
// for one array length.
func fig5Time(scheme Scheme, length int, o Fig5Options) (float64, error) {
	rt, err := New(Config{Scheme: scheme, HeapSize: 16 << 20})
	if err != nil {
		return 0, err
	}
	env, err := rt.AttachEnv("main")
	if err != nil {
		return 0, err
	}
	src, err := env.NewIntArray(length)
	if err != nil {
		return 0, err
	}
	dst, err := env.NewIntArray(length)
	if err != nil {
		return 0, err
	}
	for i := 0; i < length; i++ {
		if err := src.SetInt(i, int32(i)); err != nil {
			return 0, err
		}
	}
	var callErr error
	d := bench.Measure(o.Warmup, o.Reps, func() {
		fault, err := env.CallNative("copyArrays", Regular, func(e *Env) error {
			for it := 0; it < o.InnerIters; it++ {
				if err := copyNative(e, src, dst, length*4); err != nil {
					return err
				}
			}
			return nil
		})
		if fault != nil && callErr == nil {
			callErr = fault
		}
		if err != nil && callErr == nil {
			callErr = err
		}
	})
	if callErr != nil {
		return 0, fmt.Errorf("fig5 %v n=%d: %w", scheme, length, callErr)
	}
	return float64(d), nil
}

// RunFig5 runs the full sweep and returns normalized ratios.
func RunFig5(o Fig5Options) (*Fig5Result, error) {
	o.defaults()
	res := &Fig5Result{
		Ratios:  make(map[Scheme][]float64),
		Average: make(map[Scheme]float64),
	}
	for pow := o.MinPow; pow <= o.MaxPow; pow++ {
		res.Lengths = append(res.Lengths, 1<<pow)
	}
	times := make(map[Scheme][]float64)
	for _, scheme := range Schemes() {
		for _, n := range res.Lengths {
			t, err := fig5Time(scheme, n, o)
			if err != nil {
				return nil, err
			}
			times[scheme] = append(times[scheme], t)
		}
	}
	for _, scheme := range []Scheme{GuardedCopy, MTESync, MTEAsync} {
		for i := range res.Lengths {
			res.Ratios[scheme] = append(res.Ratios[scheme], times[scheme][i]/times[NoProtection][i])
		}
		res.Average[scheme] = bench.Mean(res.Ratios[scheme])
	}
	return res, nil
}
