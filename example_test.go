package mte4jni_test

import (
	"fmt"
	"log"

	"mte4jni"
)

// ExampleNew shows the paper's Figure 3 scenario through the public API: an
// out-of-bounds native write detected synchronously by MTE4JNI.
func ExampleNew() {
	rt, err := mte4jni.New(mte4jni.Config{Scheme: mte4jni.MTESync})
	if err != nil {
		log.Fatal(err)
	}
	env, err := rt.AttachEnv("main")
	if err != nil {
		log.Fatal(err)
	}
	arr, err := env.NewIntArray(18)
	if err != nil {
		log.Fatal(err)
	}

	fault, err := env.CallNative("test_ofb", mte4jni.Regular, func(e *mte4jni.Env) error {
		p, err := e.GetPrimitiveArrayCritical(arr)
		if err != nil {
			return err
		}
		e.StoreInt(p.Add(21*4), 0xBAD) // index 21 of int[18]
		return e.ReleasePrimitiveArrayCritical(arr, p, mte4jni.ReleaseDefault)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("detected:", fault != nil)
	fmt.Println("kind:", fault.Kind)
	fmt.Println("access:", fault.Access)
	// Output:
	// detected: true
	// kind: SEGV_MTESERR
	// access: store
}

// ExampleRunDetection compares where the schemes report the same bug.
func ExampleRunDetection() {
	for _, scheme := range []mte4jni.Scheme{mte4jni.GuardedCopy, mte4jni.MTESync, mte4jni.MTEAsync} {
		d, err := mte4jni.RunDetection(scheme, mte4jni.ScenarioOOBWrite)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s\n", scheme, d.Where)
	}
	// Output:
	// Guarded copy: at the JNI release interface (abort)
	// MTE4JNI+Sync: at the faulting instruction
	// MTE4JNI+Async: at the next syscall/context switch
}

// ExampleScheme_MTE shows the scheme predicate helpers.
func ExampleScheme_MTE() {
	for _, s := range mte4jni.Schemes() {
		fmt.Printf("%s -> %v\n", s, s.MTE())
	}
	// Output:
	// No protection -> false
	// Guarded copy -> false
	// MTE4JNI+Sync -> true
	// MTE4JNI+Async -> true
}
