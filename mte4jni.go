// Package mte4jni is a full-system reproduction, in pure Go, of
// "MTE4JNI: A Memory Tagging Method to Protect Java Heap Memory from
// Illicit Native Code Access" (Chen, Ma, Xue, Li — CGO '25).
//
// The package is the public facade over a simulated stack that mirrors the
// paper's testbed: a software model of ARM MTE (internal/mte, internal/mem,
// internal/cpu), an ART-like managed runtime with heap, threads and GC
// (internal/heap, internal/vm), the raw-pointer JNI surface of the paper's
// Table 1 with TCO-flipping trampolines (internal/jni), the guarded-copy
// baseline (internal/guardedcopy), and the MTE4JNI protector itself —
// reference-counted tag allocation/release under two-tier locking
// (internal/core).
//
// Typical use:
//
//	rt, err := mte4jni.New(mte4jni.Config{Scheme: mte4jni.MTESync})
//	env, err := rt.AttachEnv("main")
//	arr, err := env.NewIntArray(18)
//	fault, err := env.CallNative("test_ofb", mte4jni.Regular, func(e *mte4jni.Env) error {
//		p, err := e.GetPrimitiveArrayCritical(arr)
//		if err != nil { return err }
//		e.StoreInt(p.Add(21*4), 1) // out of bounds: faults under MTESync
//		return e.ReleasePrimitiveArrayCritical(arr, p, mte4jni.ReleaseDefault)
//	})
//
// The experiment drivers that regenerate every table and figure of the
// paper's evaluation live in this package too (RunEffectiveness, RunFig5,
// RunFig6, RunGeekbench, and the Run*Ablation functions); see EXPERIMENTS.md.
package mte4jni

import (
	"fmt"

	"mte4jni/internal/core"
	"mte4jni/internal/guardedcopy"
	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// Scheme selects one of the four protection schemes compared in §5.
type Scheme int

const (
	// NoProtection is Android's production default: raw pointers with no
	// checking (the normalization baseline).
	NoProtection Scheme = iota
	// GuardedCopy enables ART's guarded copy (red zones + canaries).
	GuardedCopy
	// MTESync enables MTE4JNI in synchronous check mode.
	MTESync
	// MTEAsync enables MTE4JNI in asynchronous check mode.
	MTEAsync
)

// String names the scheme as in the paper's figures.
func (s Scheme) String() string {
	switch s {
	case NoProtection:
		return "No protection"
	case GuardedCopy:
		return "Guarded copy"
	case MTESync:
		return "MTE4JNI+Sync"
	case MTEAsync:
		return "MTE4JNI+Async"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// MTE reports whether the scheme uses memory tagging.
func (s Scheme) MTE() bool { return s == MTESync || s == MTEAsync }

// MarshalText implements encoding.TextMarshaler so that maps keyed by
// Scheme serialize as readable names in JSON exports.
func (s Scheme) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler, accepting the names
// produced by String.
func (s *Scheme) UnmarshalText(text []byte) error {
	for _, c := range Schemes() {
		if c.String() == string(text) {
			*s = c
			return nil
		}
	}
	return fmt.Errorf("mte4jni: unknown scheme %q", text)
}

// Schemes lists all four schemes in the paper's comparison order.
func Schemes() []Scheme { return []Scheme{NoProtection, GuardedCopy, MTESync, MTEAsync} }

// Locking selects the synchronization design inside the MTE4JNI protector.
type Locking = core.LockScheme

const (
	// TwoTierLocking is the paper's k-hash-tables + per-object-lock design.
	TwoTierLocking = core.LockTwoTier
	// GlobalLocking is the naive single-lock baseline of §5.3.2.
	GlobalLocking = core.LockGlobal
)

// Config configures a Runtime. The zero value is a usable no-protection
// runtime with the paper's defaults.
type Config struct {
	// Scheme selects the protection scheme.
	Scheme Scheme
	// Locking selects two-tier (default) or global locking for MTE schemes.
	Locking Locking
	// HashTables is the k of the two-tier design; 0 means the paper's 16.
	HashTables int
	// HeapSize is the Java heap capacity; 0 means 64 MiB.
	HeapSize uint64
	// HeapAlignment overrides the allocation alignment; 0 selects 16 for
	// MTE schemes and 8 otherwise, the paper's §4.1 settings. Setting 8
	// together with an MTE scheme reproduces the granule-sharing hazard.
	HeapAlignment uint64
	// ProcessLevelMTE switches to the naive prctl-style process-wide
	// checking the paper rejects (§3.3); GC threads then fault on tagged
	// memory. Only meaningful for MTE schemes.
	ProcessLevelMTE bool
	// PruneTagEntries erases zero-reference hash-table entries instead of
	// retaining them as Algorithm 2 does; bounds memory for long-running
	// processes at a per-handout cost.
	PruneTagEntries bool
	// PoisonOnRelease retags released memory with the reserved poison tag
	// (mte.PoisonTag) instead of zero, making use-after-release faults
	// self-identifying in crash reports. Extension beyond the paper.
	PoisonOnRelease bool
	// TagNeighborExclusion excludes the tags of adjacent granules when
	// generating an object's tag, eliminating the 1-in-15 adjacent-object
	// collision chance (DESIGN.md Extra C). Extension beyond the paper.
	TagNeighborExclusion bool
	// DisableCheckJNI turns off the CheckJNI validation layer (pointer
	// matching on release); benchmarks that want the leanest interface can
	// set it.
	DisableCheckJNI bool
	// Seed seeds the tag RNG; 0 means a fixed default for reproducibility.
	Seed int64
}

// Re-exported aliases so that programs built on the facade don't need to
// reach into internal packages.
type (
	// Env is the per-thread JNI environment.
	Env = jni.Env
	// Object is a Java heap object handle.
	Object = vm.Object
	// Ptr is a raw (possibly tagged) native pointer.
	Ptr = mte.Ptr
	// Fault is a detected MTE memory fault.
	Fault = mte.Fault
	// Violation is a guarded-copy red-zone violation.
	Violation = guardedcopy.Violation
	// NativeKind classifies native methods (regular/@FastNative/@CriticalNative).
	NativeKind = jni.NativeKind
	// ReleaseMode is the JNI release mode (0, JNI_COMMIT, JNI_ABORT).
	ReleaseMode = jni.ReleaseMode
	// Kind is a Java primitive type.
	Kind = vm.Kind
)

// Native method kinds and release modes, re-exported.
const (
	// Regular is a plain native method (state-transitioning trampoline).
	Regular = jni.Regular
	// FastNative is an @FastNative method.
	FastNative = jni.FastNative
	// CriticalNative is an @CriticalNative method.
	CriticalNative = jni.CriticalNative

	// ReleaseDefault copies back and frees.
	ReleaseDefault = jni.ReleaseDefault
	// JNICommit copies back without freeing.
	JNICommit = jni.JNICommit
	// JNIAbort frees without copying back.
	JNIAbort = jni.JNIAbort
)

// Java primitive kinds, re-exported.
const (
	KindByte   = vm.KindByte
	KindChar   = vm.KindChar
	KindShort  = vm.KindShort
	KindInt    = vm.KindInt
	KindLong   = vm.KindLong
	KindFloat  = vm.KindFloat
	KindDouble = vm.KindDouble
)

// Runtime is one simulated Android runtime configured with a protection
// scheme — the unit every experiment constructs per scheme.
type Runtime struct {
	cfg     Config
	vm      *vm.VM
	checker jni.Checker
}

// New builds a Runtime for cfg.
func New(cfg Config) (*Runtime, error) {
	opts := vm.Options{
		HeapSize:        cfg.HeapSize,
		Alignment:       cfg.HeapAlignment,
		MTE:             cfg.Scheme.MTE(),
		ProcessLevelMTE: cfg.ProcessLevelMTE,
		Seed:            cfg.Seed,
	}
	switch cfg.Scheme {
	case MTESync:
		opts.CheckMode = mte.TCFSync
	case MTEAsync:
		opts.CheckMode = mte.TCFAsync
	}
	v, err := vm.New(opts)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{cfg: cfg, vm: v}
	switch cfg.Scheme {
	case NoProtection:
		rt.checker = jni.DirectChecker{}
	case GuardedCopy:
		rt.checker = guardedcopy.New(v)
	case MTESync, MTEAsync:
		p, err := core.New(v, core.Config{
			HashTables:       cfg.HashTables,
			Lock:             cfg.Locking,
			PruneEntries:     cfg.PruneTagEntries,
			PoisonOnRelease:  cfg.PoisonOnRelease,
			ExcludeNeighbors: cfg.TagNeighborExclusion,
		})
		if err != nil {
			return nil, err
		}
		rt.checker = p
	default:
		return nil, fmt.Errorf("mte4jni: unknown scheme %v", cfg.Scheme)
	}
	return rt, nil
}

// MustNew is New for program setup paths where a configuration error is a
// programming bug; it panics on error.
func MustNew(cfg Config) *Runtime {
	rt, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return rt
}

// Config returns the configuration in force.
func (r *Runtime) Config() Config { return r.cfg }

// Scheme returns the active protection scheme.
func (r *Runtime) Scheme() Scheme { return r.cfg.Scheme }

// VM exposes the underlying managed runtime, for tests and advanced use.
func (r *Runtime) VM() *vm.VM { return r.vm }

// AttachEnv attaches a new thread and returns its JNI environment.
func (r *Runtime) AttachEnv(name string) (*Env, error) {
	th, err := r.vm.AttachThread(name)
	if err != nil {
		return nil, err
	}
	return jni.NewEnv(th, r.checker, !r.cfg.DisableCheckJNI), nil
}

// DetachEnv detaches the environment's thread from the runtime.
func (r *Runtime) DetachEnv(env *Env) { r.vm.DetachThread(env.Thread()) }

// GC runs a stop-the-world collection on the runtime's heap.
func (r *Runtime) GC() vm.GCStats { return r.vm.GC() }

// Protector returns the MTE4JNI protector, or nil for non-MTE schemes.
func (r *Runtime) Protector() *core.Protector {
	p, _ := r.checker.(*core.Protector)
	return p
}

// GuardedChecker returns the guarded-copy checker, or nil for other
// schemes.
func (r *Runtime) GuardedChecker() *guardedcopy.Checker {
	c, _ := r.checker.(*guardedcopy.Checker)
	return c
}
