package mte4jni

import (
	"fmt"
	"time"

	"mte4jni/internal/bench"
	"mte4jni/internal/core"
	"mte4jni/internal/jni"
	"mte4jni/internal/mte"
	"mte4jni/internal/vm"
)

// This file implements the ablation experiments DESIGN.md calls out beyond
// the paper's own figures: the §4.1 heap-alignment hazard (Extra A), the
// hash-table-count sweep behind the two-tier design (Extra B), and the
// 4-bit tag collision probability with its neighbour-exclusion mitigation
// (Extra C).

// AlignmentAblationResult quantifies the §4.1 granule-sharing hazard: how
// many adjacent-object OOB writes each heap alignment lets slip through.
type AlignmentAblationResult struct {
	// Sizes are the payload sizes (bytes) trialled.
	Sizes []int
	// MissedByAlignment maps alignment (8 or 16) to the number of missed
	// detections across all sizes.
	MissedByAlignment map[uint64]int
	// PerSize maps alignment to per-size miss flags, index-aligned with
	// Sizes.
	PerSize map[uint64][]bool
}

// Table renders the result.
func (r *AlignmentAblationResult) Table() *bench.Table {
	t := bench.NewTable("Ablation A (§4.1): adjacent-object OOB write detection vs heap alignment",
		"payload bytes", "align 8", "align 16")
	verdict := func(missed bool) string {
		if missed {
			return "MISSED"
		}
		return "detected"
	}
	for i, size := range r.Sizes {
		t.AddRow(fmt.Sprintf("%d", size), verdict(r.PerSize[8][i]), verdict(r.PerSize[16][i]))
	}
	return t
}

// RunAlignmentAblation allocates pairs of adjacent byte arrays under
// MTE4JNI+Sync with 8- and 16-byte heap alignment, has native code write
// one byte into the neighbouring object, and records whether the write was
// detected. Under 16-byte alignment every such write is caught; under
// 8-byte alignment objects can share a tag granule and the write slips
// through — the reason §4.1 changes ART's allocator alignment.
func RunAlignmentAblation(sizes []int) (*AlignmentAblationResult, error) {
	if len(sizes) == 0 {
		for s := 1; s <= 48; s += 3 {
			sizes = append(sizes, s)
		}
	}
	res := &AlignmentAblationResult{
		Sizes:             sizes,
		MissedByAlignment: make(map[uint64]int),
		PerSize:           make(map[uint64][]bool),
	}
	for _, align := range []uint64{8, 16} {
		rt, err := New(Config{Scheme: MTESync, HeapAlignment: align, HeapSize: 16 << 20})
		if err != nil {
			return nil, err
		}
		env, err := rt.AttachEnv("main")
		if err != nil {
			return nil, err
		}
		for _, size := range sizes {
			a, err := env.NewArray(KindByte, size)
			if err != nil {
				return nil, err
			}
			b, err := env.NewArray(KindByte, size)
			if err != nil {
				return nil, err
			}
			offset := int64(b.Addr() - a.DataBegin()) // into b's header word
			fault, err := env.CallNative("oob_neighbor", Regular, func(e *Env) error {
				p, err := e.GetPrimitiveArrayCritical(a)
				if err != nil {
					return err
				}
				e.StoreByte(p.Add(offset), 0xFF)
				return e.ReleasePrimitiveArrayCritical(a, p, ReleaseDefault)
			})
			if err != nil {
				return nil, err
			}
			missed := fault == nil
			res.PerSize[align] = append(res.PerSize[align], missed)
			if missed {
				res.MissedByAlignment[align]++
			}
		}
	}
	return res, nil
}

// HashTableAblationResult is the Extra B sweep: Figure 6's different-array
// test as a function of the hash-table count k.
type HashTableAblationResult struct {
	// Ks are the swept hash-table counts.
	Ks []int
	// Durations are the wall-clock times, index-aligned with Ks.
	Durations []time.Duration
	// Normalized is each duration divided by the k=16 duration (the paper's
	// setting), if 16 is in the sweep; otherwise by the fastest.
	Normalized []float64
}

// Table renders the result.
func (r *HashTableAblationResult) Table() *bench.Table {
	t := bench.NewTable("Ablation B (§3.1.2): different-array contention vs hash-table count k",
		"k", "time", "vs k=16")
	for i, k := range r.Ks {
		t.AddRow(fmt.Sprintf("%d", k), r.Durations[i].String(), bench.Ratio(r.Normalized[i]))
	}
	return t
}

// RunHashTableAblation sweeps k over the Figure 6 different-arrays test
// under MTE4JNI+Sync with the two-tier scheme.
func RunHashTableAblation(ks []int, o Fig6Options) (*HashTableAblationResult, error) {
	if len(ks) == 0 {
		ks = []int{1, 2, 4, 8, 16, 32, 64}
	}
	o.defaults()
	res := &HashTableAblationResult{Ks: ks}
	base := time.Duration(0)
	for _, k := range ks {
		d, err := fig6RunWithHashTables(k, o)
		if err != nil {
			return nil, err
		}
		res.Durations = append(res.Durations, d)
		if k == 16 {
			base = d
		}
	}
	if base == 0 {
		base = res.Durations[0]
		for _, d := range res.Durations {
			if d < base {
				base = d
			}
		}
	}
	for _, d := range res.Durations {
		res.Normalized = append(res.Normalized, float64(d)/float64(base))
	}
	return res, nil
}

// fig6RunWithHashTables runs the different-arrays Figure 6 test with a
// custom k.
func fig6RunWithHashTables(k int, o Fig6Options) (time.Duration, error) {
	v := Fig6Variant{Display: fmt.Sprintf("k=%d", k), Scheme: MTESync, Locking: TwoTierLocking}
	d, _, err := fig6RunConfigured(v, false, o, k)
	return d, err
}

// TagCollisionResult is the Extra C experiment: the probability that an OOB
// access from one tagged object into an adjacent tagged object goes
// undetected because both drew the same 4-bit tag, with and without the
// neighbour-exclusion hardening.
type TagCollisionResult struct {
	// Trials is the number of adjacent pairs tested per configuration.
	Trials int
	// MissedRandom counts undetected OOB writes with plain random tags
	// (expected ≈ Trials/15: tag 0 is excluded, leaving 15 values).
	MissedRandom int
	// MissedExcluding counts undetected OOB writes with neighbour tags
	// excluded from generation (expected 0).
	MissedExcluding int
}

// Table renders the result.
func (r *TagCollisionResult) Table() *bench.Table {
	t := bench.NewTable("Ablation C (§2.1): adjacent-object tag collisions over "+fmt.Sprintf("%d trials", r.Trials),
		"tag generation", "missed", "miss rate", "expected")
	t.AddRow("random (paper §3.1.1)",
		fmt.Sprintf("%d", r.MissedRandom),
		fmt.Sprintf("%.2f%%", 100*float64(r.MissedRandom)/float64(r.Trials)),
		"≈6.67% (1/15)")
	t.AddRow("neighbour-excluding IRG mask",
		fmt.Sprintf("%d", r.MissedExcluding),
		fmt.Sprintf("%.2f%%", 100*float64(r.MissedExcluding)/float64(r.Trials)),
		"0%")
	return t
}

// RunTagCollisionAblation measures adjacent-object tag collisions. Each
// trial allocates two adjacent byte arrays, acquires both through JNI (so
// both are tagged), then writes through the first array's pointer into the
// second array's payload. With independent random tags the write is missed
// whenever the tags collide; with neighbour exclusion it never is.
func RunTagCollisionAblation(trials int) (*TagCollisionResult, error) {
	if trials == 0 {
		trials = 1500
	}
	res := &TagCollisionResult{Trials: trials}
	for _, exclude := range []bool{false, true} {
		missed, err := tagCollisionTrials(trials, exclude)
		if err != nil {
			return nil, err
		}
		if exclude {
			res.MissedExcluding = missed
		} else {
			res.MissedRandom = missed
		}
	}
	return res, nil
}

// tagCollisionTrials runs the trial loop for one tag-generation policy.
func tagCollisionTrials(trials int, excludeNeighbors bool) (int, error) {
	// Build the runtime manually so the protector can be configured with
	// the hardening flag.
	v, err := vm.New(vm.Options{HeapSize: 64 << 20, MTE: true, CheckMode: mte.TCFSync, Seed: 97})
	if err != nil {
		return 0, err
	}
	protector, err := core.New(v, core.Config{ExcludeNeighbors: excludeNeighbors})
	if err != nil {
		return 0, err
	}
	th, err := v.AttachThread("main")
	if err != nil {
		return 0, err
	}
	env := jni.NewEnv(th, protector, true)

	missed := 0
	for i := 0; i < trials; i++ {
		a, err := env.NewArray(KindByte, 16)
		if err != nil {
			return 0, err
		}
		b, err := env.NewArray(KindByte, 16)
		if err != nil {
			return 0, err
		}
		offset := int64(b.DataBegin() - a.DataBegin())
		fault, err := env.CallNative("collide", Regular, func(e *Env) error {
			pa, err := e.GetPrimitiveArrayCritical(a)
			if err != nil {
				return err
			}
			pb, err := e.GetPrimitiveArrayCritical(b)
			if err != nil {
				return err
			}
			e.StoreByte(pa.Add(offset), 0x5A) // OOB from a into b's payload
			if err := e.ReleasePrimitiveArrayCritical(b, pb, ReleaseDefault); err != nil {
				return err
			}
			return e.ReleasePrimitiveArrayCritical(a, pa, ReleaseDefault)
		})
		if err != nil {
			return 0, err
		}
		if fault == nil {
			missed++
		}
		// Drop references so the heap can be collected periodically.
		env.DeleteLocalRef(a)
		env.DeleteLocalRef(b)
		if i%256 == 255 {
			v.GC()
		}
	}
	return missed, nil
}
