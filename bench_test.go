package mte4jni

// One testing.B benchmark family per table/figure of the paper's
// evaluation, plus ablation and micro benchmarks. Comparing the ns/op of
// the sub-benchmarks across schemes reproduces the paper's ratios; the
// `mte4jni` command prints the same data as ready-made tables/figures.
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"sync"
	"testing"

	"mte4jni/internal/analysis"
	"mte4jni/internal/interp"
	"mte4jni/internal/jni"
	"mte4jni/internal/workloads"
)

// benchEnv builds a runtime + env for a scheme, failing the benchmark on
// error.
func benchEnv(b *testing.B, cfg Config) (*Runtime, *Env) {
	b.Helper()
	rt, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	env, err := rt.AttachEnv("bench")
	if err != nil {
		b.Fatal(err)
	}
	return rt, env
}

// BenchmarkFig4Effectiveness measures the cost of detecting (or missing)
// the paper's Figure 3 OOB write under each scheme, end to end including
// runtime construction — the cost of one crash diagnosis.
func BenchmarkFig4Effectiveness(b *testing.B) {
	for _, scheme := range Schemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunDetection(scheme, ScenarioOOBWrite); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5SingleThread is the §5.3.1 experiment: one native
// acquire/copy/release of int[n]→int[n] per iteration. Compare ns/op
// across schemes at fixed n for the paper's ratios.
func BenchmarkFig5SingleThread(b *testing.B) {
	for _, scheme := range Schemes() {
		for _, pow := range []int{1, 4, 8, 12} {
			n := 1 << pow
			b.Run(fmt.Sprintf("%s/n=2^%d", scheme, pow), func(b *testing.B) {
				_, env := benchEnv(b, Config{Scheme: scheme, HeapSize: 16 << 20})
				src, err := env.NewIntArray(n)
				if err != nil {
					b.Fatal(err)
				}
				dst, err := env.NewIntArray(n)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(n * 4))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fault, err := env.CallNative("copyArrays", Regular, func(e *Env) error {
						return copyNative(e, src, dst, n*4)
					})
					if fault != nil || err != nil {
						b.Fatalf("fault=%v err=%v", fault, err)
					}
				}
			})
		}
	}
}

// BenchmarkFig5Elision is the proof-carrying elision experiment: the same
// screened-safe program (a hot loop of statically proven in-bounds array
// accesses plus one in-payload native call) under MTE-Sync, executed fully
// checked versus with its compiled elision mask bound. The delta is the tag
// check cost the admission screen's proofs discharge.
func BenchmarkFig5Elision(b *testing.B) {
	p := elisionBenchProgram()
	v := analysis.Screen(p)
	if v.Verdict != analysis.VerdictSafe || v.Elision == nil {
		b.Fatalf("elision bench program not screened safe: %+v", v)
	}
	for _, elide := range []bool{false, true} {
		variant := "checked"
		if elide {
			variant = "elided"
		}
		b.Run(variant, func(b *testing.B) {
			_, env := benchEnv(b, Config{Scheme: MTESync, HeapSize: 256 << 20})
			ip := interp.New(env)
			// One interpreter runs all b.N iterations; the cumulative step
			// budget is a safety net, not part of the measured work.
			ip.MaxSteps = 1 << 62
			for name, sum := range p.Natives {
				ip.RegisterNative(name, interp.NativeMethod{Kind: sum.Kind, Body: sum.Materialize()})
			}
			if elide {
				if err := v.Elision.ValidateBinding(p); err != nil {
					b.Fatal(err)
				}
				ip.BindElision(v.Elision.Mask())
			}
			b.SetBytes(elisionBenchBytesPerOp)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ret, fault, err := ip.InvokeCtx(nil, p.Method)
				if ret != 7 || fault != nil || err != nil {
					b.Fatalf("ret=%d fault=%v err=%v", ret, fault, err)
				}
			}
		})
	}
}

// BenchmarkFig6MultiThread is the §5.3.2 experiment: each iteration is one
// full multi-thread run (8 threads × 200 acquire/read/release of an
// int[1024]), in both contention patterns.
func BenchmarkFig6MultiThread(b *testing.B) {
	for _, v := range Fig6Variants() {
		for _, same := range []bool{true, false} {
			test := "different-arrays"
			if same {
				test = "same-array"
			}
			b.Run(v.Display+"/"+test, func(b *testing.B) {
				o := Fig6Options{Threads: 8, Iters: 200, ArrayLen: 1024, Reps: 1, Warmup: 0}
				o.defaults()
				for i := 0; i < b.N; i++ {
					if _, _, err := fig6Run(v, same, o); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig7SingleCore is the §5.4 single-core experiment: one run of
// each GeekBench-style workload per iteration, per scheme.
func BenchmarkFig7SingleCore(b *testing.B) {
	for _, w := range workloads.All(workloads.ScaleSmall) {
		for _, scheme := range Schemes() {
			b.Run(w.Name()+"/"+scheme.String(), func(b *testing.B) {
				rt, env := benchEnv(b, Config{Scheme: scheme, HeapSize: 256 << 20})
				inst, err := workloads.ByName(w.Name(), workloads.ScaleSmall)
				if err != nil {
					b.Fatal(err)
				}
				if err := inst.Setup(env); err != nil {
					b.Fatal(err)
				}
				_ = rt
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fault, err := env.CallNative(inst.Name(), jni.Regular, inst.Run)
					if fault != nil || err != nil {
						b.Fatalf("fault=%v err=%v", fault, err)
					}
				}
			})
		}
	}
}

// BenchmarkFig8MultiCore is the §5.4 multi-core experiment on a
// representative slice: four workloads (two bulk, two of the paper's
// intensive exceptions) run with 4 concurrent copies.
func BenchmarkFig8MultiCore(b *testing.B) {
	const cores = 4
	for _, name := range []string{"File Compression", "Ray Tracer", "Clang", "PDF Renderer"} {
		for _, scheme := range Schemes() {
			b.Run(name+"/"+scheme.String(), func(b *testing.B) {
				rt, err := New(Config{Scheme: scheme, HeapSize: 256 << 20})
				if err != nil {
					b.Fatal(err)
				}
				insts := make([]workloads.Workload, cores)
				envs := make([]*Env, cores)
				for c := 0; c < cores; c++ {
					insts[c], err = workloads.ByName(name, workloads.ScaleSmall)
					if err != nil {
						b.Fatal(err)
					}
					envs[c], err = rt.AttachEnv(fmt.Sprintf("w%d", c))
					if err != nil {
						b.Fatal(err)
					}
					if err := insts[c].Setup(envs[c]); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					wg.Add(cores)
					for c := 0; c < cores; c++ {
						go func(c int) {
							defer wg.Done()
							fault, err := envs[c].CallNative(name, jni.Regular, insts[c].Run)
							if fault != nil || err != nil {
								b.Errorf("fault=%v err=%v", fault, err)
							}
						}(c)
					}
					wg.Wait()
				}
			})
		}
	}
}

// BenchmarkTable1Interfaces covers the full Table 1 surface under MTE4JNI:
// one get+release per iteration, per interface family.
func BenchmarkTable1Interfaces(b *testing.B) {
	_, env := benchEnv(b, Config{Scheme: MTESync, HeapSize: 32 << 20})
	arr, err := env.NewIntArray(256)
	if err != nil {
		b.Fatal(err)
	}
	str, err := env.NewString("the quick brown fox jumps over the lazy dog")
	if err != nil {
		b.Fatal(err)
	}

	b.Run("GetPrimitiveArrayCritical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fault, err := env.CallNative("t", Regular, func(e *Env) error {
				p, err := e.GetPrimitiveArrayCritical(arr)
				if err != nil {
					return err
				}
				return e.ReleasePrimitiveArrayCritical(arr, p, ReleaseDefault)
			})
			if fault != nil || err != nil {
				b.Fatalf("fault=%v err=%v", fault, err)
			}
		}
	})
	b.Run("GetIntArrayElements", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fault, err := env.CallNative("t", Regular, func(e *Env) error {
				p, err := e.GetIntArrayElements(arr)
				if err != nil {
					return err
				}
				return e.ReleaseIntArrayElements(arr, p, ReleaseDefault)
			})
			if fault != nil || err != nil {
				b.Fatalf("fault=%v err=%v", fault, err)
			}
		}
	})
	b.Run("GetStringCritical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fault, err := env.CallNative("t", Regular, func(e *Env) error {
				p, err := e.GetStringCritical(str)
				if err != nil {
					return err
				}
				return e.ReleaseStringCritical(str, p)
			})
			if fault != nil || err != nil {
				b.Fatalf("fault=%v err=%v", fault, err)
			}
		}
	})
	b.Run("GetStringChars", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fault, err := env.CallNative("t", Regular, func(e *Env) error {
				p, err := e.GetStringChars(str)
				if err != nil {
					return err
				}
				return e.ReleaseStringChars(str, p)
			})
			if fault != nil || err != nil {
				b.Fatalf("fault=%v err=%v", fault, err)
			}
		}
	})
	b.Run("GetStringUTFChars", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fault, err := env.CallNative("t", Regular, func(e *Env) error {
				p, _, err := e.GetStringUTFChars(str)
				if err != nil {
					return err
				}
				return e.ReleaseStringUTFChars(str, p)
			})
			if fault != nil || err != nil {
				b.Fatalf("fault=%v err=%v", fault, err)
			}
		}
	})
	b.Run("GetIntArrayRegion", func(b *testing.B) {
		buf := make([]byte, 64*4)
		for i := 0; i < b.N; i++ {
			if err := env.GetArrayRegion(KindInt, arr, 16, 64, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationAlignment times the full §4.1 alignment ablation.
func BenchmarkAblationAlignment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunAlignmentAblation([]int{1, 8, 16, 24}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHashTables compares the two-tier design's k settings on
// the different-arrays contention test.
func BenchmarkAblationHashTables(b *testing.B) {
	o := Fig6Options{Threads: 8, Iters: 100, ArrayLen: 256, Reps: 1, Warmup: 0}
	o.defaults()
	for _, k := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fig6RunWithHashTables(k, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTagAllocRelease is the microbenchmark of the paper's core
// operation: Algorithm 1 + Algorithm 2 on a 1 KiB object, per locking
// scheme.
func BenchmarkTagAllocRelease(b *testing.B) {
	for _, locking := range []Locking{TwoTierLocking, GlobalLocking} {
		b.Run(locking.String(), func(b *testing.B) {
			rt, env := benchEnv(b, Config{Scheme: MTESync, Locking: locking, HeapSize: 16 << 20})
			arr, err := env.NewIntArray(256)
			if err != nil {
				b.Fatal(err)
			}
			p := rt.Protector()
			th := env.Thread()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ptr, err := p.Acquire(th, arr, arr.DataBegin(), arr.DataEnd())
				if err != nil {
					b.Fatal(err)
				}
				if err := p.Release(th, arr, ptr, arr.DataBegin(), arr.DataEnd(), ReleaseDefault); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCheckedAccess compares the simulated load/store unit with
// checking off vs on — the reproduction's stand-in for the hardware tag
// check cost.
func BenchmarkCheckedAccess(b *testing.B) {
	for _, scheme := range []Scheme{NoProtection, MTESync} {
		b.Run(scheme.String(), func(b *testing.B) {
			_, env := benchEnv(b, Config{Scheme: scheme, HeapSize: 16 << 20})
			arr, err := env.NewIntArray(1024)
			if err != nil {
				b.Fatal(err)
			}
			fault, err := env.CallNative("bench", Regular, func(e *Env) error {
				p, err := e.GetPrimitiveArrayCritical(arr)
				if err != nil {
					return err
				}
				b.ResetTimer()
				var sink int32
				for i := 0; i < b.N; i++ {
					sink += e.LoadInt(p.Add(int64(i%1024) * 4))
				}
				b.StopTimer()
				_ = sink
				return e.ReleasePrimitiveArrayCritical(arr, p, ReleaseDefault)
			})
			if fault != nil || err != nil {
				b.Fatalf("fault=%v err=%v", fault, err)
			}
		})
	}
}

// BenchmarkTagFootprint measures the hierarchical tag store's resident
// footprint for a session-shaped working set: 32 pinned (acquired, hence
// tagged) int[1024] arrays on a 64 MiB heap, with acquire/release churn on
// one more. Alongside ns/op for the churn it reports two end-of-run gauges
// the snapshot schema understands (tagB/op, flatTagB/op): resident tag
// bytes under the two-level store versus what the flat per-granule array
// would hold resident for the same mappings.
func BenchmarkTagFootprint(b *testing.B) {
	b.Run("session", func(b *testing.B) {
		rt, env := benchEnv(b, Config{Scheme: MTESync, HeapSize: 64 << 20})
		p := rt.Protector()
		th := env.Thread()
		for i := 0; i < 32; i++ {
			arr, err := env.NewIntArray(1024)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Acquire(th, arr, arr.DataBegin(), arr.DataEnd()); err != nil {
				b.Fatal(err)
			}
		}
		churn, err := env.NewIntArray(1024)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ptr, err := p.Acquire(th, churn, churn.DataBegin(), churn.DataEnd())
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Release(th, churn, ptr, churn.DataBegin(), churn.DataEnd(), ReleaseDefault); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		ts := rt.VM().Space.TagStats()
		b.ReportMetric(float64(ts.BytesResident), "tagB/op")
		b.ReportMetric(float64(ts.BytesFlatEquiv), "flatTagB/op")
		if ts.BytesFlatEquiv < 10*ts.BytesResident {
			b.Fatalf("tag residency not >=10x under flat: resident=%d flat=%d", ts.BytesResident, ts.BytesFlatEquiv)
		}
	})
}
