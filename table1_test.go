package mte4jni

import (
	"errors"
	"testing"
)

// TestTable1FullCoverage drives every Table 1 interface pair under every
// scheme: a clean acquire/use/release cycle, then (for MTE sync) an
// out-of-bounds access through the same interface, asserting detection.
// This is the "every pointer-returning interface undergoes memory tag
// allocation" claim of §4.2, tested exhaustively.
func TestTable1FullCoverage(t *testing.T) {
	type iface struct {
		name string
		// run acquires, optionally misuses (oob), uses, and releases.
		run func(env *Env, oob bool) error
	}

	mkArr := func(env *Env, k Kind) *Object {
		arr, err := env.NewArray(k, 24)
		if err != nil {
			t.Fatal(err)
		}
		return arr
	}
	mkStr := func(env *Env) *Object {
		s, err := env.NewString("twelve chars")
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	ifaces := []iface{
		{"GetPrimitiveArrayCritical", func(env *Env, oob bool) error {
			arr := mkArr(env, KindInt)
			p, err := env.GetPrimitiveArrayCritical(arr)
			if err != nil {
				return err
			}
			if oob {
				env.StoreInt(p.Add(int64(arr.DataSize()+16)), 1)
			} else {
				env.StoreInt(p, 1)
			}
			return env.ReleasePrimitiveArrayCritical(arr, p, ReleaseDefault)
		}},
		{"GetStringCritical", func(env *Env, oob bool) error {
			s := mkStr(env)
			p, err := env.GetStringCritical(s)
			if err != nil {
				return err
			}
			if oob {
				_ = env.LoadChar(p.Add(int64(s.DataSize() + 16)))
			} else {
				_ = env.LoadChar(p)
			}
			return env.ReleaseStringCritical(s, p)
		}},
		{"GetStringChars", func(env *Env, oob bool) error {
			s := mkStr(env)
			p, err := env.GetStringChars(s)
			if err != nil {
				return err
			}
			if oob {
				_ = env.LoadChar(p.Add(-18))
			} else {
				_ = env.LoadChar(p.Add(2))
			}
			return env.ReleaseStringChars(s, p)
		}},
		{"GetStringUTFChars", func(env *Env, oob bool) error {
			s := mkStr(env)
			p, n, err := env.GetStringUTFChars(s)
			if err != nil {
				return err
			}
			if oob {
				_ = env.LoadByte(p.Add(int64(n + 32)))
			} else {
				_ = env.LoadByte(p)
			}
			return env.ReleaseStringUTFChars(s, p)
		}},
	}
	for _, k := range []Kind{KindByte, KindChar, KindShort, KindInt, KindLong, KindFloat, KindDouble} {
		k := k
		ifaces = append(ifaces, iface{"Get" + k.String() + "ArrayElements", func(env *Env, oob bool) error {
			arr := mkArr(env, k)
			p, err := env.GetArrayElements(k, arr)
			if err != nil {
				return err
			}
			if oob {
				env.StoreByte(p.Add(int64(arr.DataSize()+16)), 1)
			} else {
				env.StoreByte(p, 1)
			}
			return env.ReleaseArrayElements(k, arr, p, ReleaseDefault)
		}})
	}

	for _, scheme := range Schemes() {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			rt, err := New(Config{Scheme: scheme, HeapSize: 16 << 20})
			if err != nil {
				t.Fatal(err)
			}
			env, err := rt.AttachEnv("main")
			if err != nil {
				t.Fatal(err)
			}
			for _, in := range ifaces {
				// Clean cycle: never a fault, never an error, no new leaks.
				before := env.OutstandingAcquisitions()
				fault, err := env.CallNative(in.name, Regular, func(e *Env) error {
					return in.run(e, false)
				})
				if fault != nil || err != nil {
					t.Fatalf("%s clean cycle: fault=%v err=%v", in.name, fault, err)
				}
				if n := env.OutstandingAcquisitions(); n != before {
					t.Fatalf("%s leaked %d acquisitions", in.name, n-before)
				}

				// OOB cycle. MTE schemes must fault (sync at the access,
				// async by trampoline exit at the latest) — the fault aborts
				// the native frame before release, as a real crash would, so
				// the dangling acquisition is expected. Guarded copy reports
				// OOB *writes* as violations from the release interface.
				fault, err = env.CallNative(in.name, Regular, func(e *Env) error {
					return in.run(e, true)
				})
				var viol *Violation
				detectedAtRelease := errors.As(err, &viol)
				if err != nil && !detectedAtRelease {
					t.Fatalf("%s oob cycle: %v", in.name, err)
				}
				if scheme.MTE() && fault == nil {
					t.Fatalf("%s: OOB access undetected under %v", in.name, scheme)
				}
				if scheme == NoProtection && (fault != nil || detectedAtRelease) {
					t.Fatalf("%s: no-protection detected something: fault=%v err=%v", in.name, fault, err)
				}
				if scheme == GuardedCopy && fault != nil {
					t.Fatalf("%s: guarded copy produced a hardware fault: %v", in.name, fault)
				}
			}
			// MTE runtimes end with a consistent tag table.
			if p := rt.Protector(); p != nil {
				if err := p.VerifyIntegrity(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestSchemeJSONRoundTrip(t *testing.T) {
	for _, s := range Schemes() {
		text, err := s.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Scheme
		if err := back.UnmarshalText(text); err != nil {
			t.Fatal(err)
		}
		if back != s {
			t.Fatalf("%v round-tripped to %v", s, back)
		}
	}
	var s Scheme
	if err := s.UnmarshalText([]byte("bogus")); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}
