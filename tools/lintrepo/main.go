// Command lintrepo is this repository's own vet tool: a set of
// go/analysis-style passes enforcing repo invariants that ordinary go vet
// cannot know about, run as `go vet -vettool=<lintrepo> ./...` (the
// `make lint-repo` target, part of `make check`).
//
// The passes (see passes.go):
//
//   - noinline-fault: functions in internal/mem that construct *mte.Fault
//     must be marked //go:noinline, so fault construction (and its
//     Backtrace allocation) stays off the fault-free access path.
//   - mem-encapsulation: Space internals — raw tag storage, raw byte
//     windows, scan-lock plumbing — may only be touched by the
//     memory-management tier, never by the serving/analysis layers.
//   - fastpath: functions annotated //mte4jni:fastpath must not allocate,
//     take timestamps, or otherwise leave the zero-cost regime.
//   - atomic-consistency: a struct field accessed through sync/atomic
//     anywhere in a package must not also be plainly assigned in that
//     package.
//   - no-bare-context: context.Background()/context.TODO() are forbidden
//     outside cmd/ packages, main functions, and tests, keeping the
//     execution-context spine (cancellation, deadlines, tracing) unbroken
//     from the HTTP edge to the interpreter loop.
//   - elision-encapsulation: only the proof compiler (internal/analysis) —
//     and internal/interp, which defines the type — may construct an
//     interp.ElisionMask; a mask minted anywhere else is an unproven
//     soundness claim.
//   - unguarded-gate: the *Unguarded access variants are callable only from
//     the elision tier, and inside internal/jni only behind an if that
//     consults the elided() gate, so invalidated proofs fall back to
//     checked access.
//   - tagtable-encapsulation: the hierarchical tag store's raw storage —
//     the per-mapping page directory (tagTable.dir) and the canonical
//     uniform-page array (uniformPages) — may only be named inside
//     internal/mem/tagtable.go; all other code resolves pages through the
//     page()/canonical() accessors, which uphold the publication and
//     residency invariants.
//   - redteam-encapsulation: the New*Attack constructors build unharnessed
//     exploits and may only be called inside internal/redteam; everything
//     else consumes the corpus through redteam.Run/Corpus or the serving
//     tier's ServingProbe, which carry their own harnessing and verdicts.
//   - temporal-encapsulation: NewTemporalFinding and NewWindowEvent may only
//     be called inside internal/analysis; a temporal verdict or
//     happens-before event constructed anywhere else is an unproven
//     admission claim — consume them through the ScreenVerdict.
//
// The tool speaks the cmd/go vet-tool protocol directly (the golang.org/x/
// tools unitchecker is not vendored here, and the repo is stdlib-only):
//
//	lintrepo -V=full        print a version line carrying a content hash of
//	                        the tool binary, so editing the tool invalidates
//	                        go's vet action cache
//	lintrepo -flags         print the tool's analyzer flags as JSON (none)
//	lintrepo <vet.cfg>      analyze one package described by the JSON config
//	                        cmd/go wrote; diagnostics go to stderr as
//	                        file:line:col: message, exit 2 if any fired
//
// cmd/go also invokes the tool for every dependency (including the standard
// library) in facts-only mode; lintrepo has no cross-package facts, so those
// invocations just record an empty facts file and exit.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// modulePath is the import-path prefix of the packages the passes apply to.
// Everything else (standard library, facts-only dependency invocations) is
// acknowledged and skipped.
const modulePath = "mte4jni"

func main() {
	args := os.Args[1:]
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		printVersion()
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		// No analyzer flags: cmd/go parses this as an empty flag set.
		fmt.Println("[]")
		return
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: lintrepo [-V=full | -flags | vet.cfg]")
		os.Exit(2)
	}
	// Per cmd/go convention the config path is the last argument; any vet
	// flags the user passed come before it and none are ours.
	nd, err := lintConfig(args[len(args)-1], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintrepo:", err)
		os.Exit(1)
	}
	if nd > 0 {
		os.Exit(2)
	}
}

// printVersion emits the `-V=full` line cmd/go hashes into its vet action
// IDs. The build ID is a content hash of the tool binary itself, so
// rebuilding lintrepo after an edit re-runs vet everywhere instead of
// replaying stale cached verdicts.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("lintrepo version devel buildID=%x\n", h.Sum(nil))
}

// vetConfig is the subset of cmd/go's per-package vet configuration JSON
// that lintrepo consumes.
type vetConfig struct {
	ImportPath string
	GoFiles    []string
	Standard   map[string]bool // package path -> is standard library
	VetxOnly   bool
	VetxOutput string
}

// lintConfig analyzes the package described by the vet config at cfgPath,
// writing diagnostics to w, and reports how many fired. Dependency
// (facts-only) and out-of-module packages are acknowledged without
// analysis.
func lintConfig(cfgPath string, w io.Writer) (ndiags int, err error) {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	// Record the (empty) facts file first: cmd/go caches vet actions by
	// their outputs, and dependency invocations exist only to produce it.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("lintrepo: no facts\n"), 0o666); err != nil {
			return 0, err
		}
	}
	// "pkg [pkg.test]" is the in-package test variant; analyze it as pkg
	// (its _test.go files are skipped below, so the verdict matches).
	importPath := cfg.ImportPath
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		importPath = importPath[:i]
	}
	inModule := importPath == modulePath || strings.HasPrefix(importPath, modulePath+"/")
	if cfg.VetxOnly || cfg.Standard[importPath] || !inModule {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(filepath.Base(name), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return 0, err
		}
		files = append(files, f)
	}
	diags := runPasses(fset, importPath, files)
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s\n", fset.Position(d.pos), d.msg)
	}
	return len(diags), nil
}
