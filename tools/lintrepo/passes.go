package main

// The repo-invariant passes. Each works on plain syntax (go/ast, no
// type information — the repo is stdlib-only, so there is no go/analysis
// driver to borrow a type checker from); where syntax alone is ambiguous
// the pass errs toward silence and documents the heuristic.

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// diagnostic is one finding, positioned for file:line:col rendering.
type diagnostic struct {
	pos token.Pos
	msg string
}

// runPasses applies every pass that claims the package and returns the
// findings in source order (the order the walks produce them).
func runPasses(fset *token.FileSet, importPath string, files []*ast.File) []diagnostic {
	var diags []diagnostic
	diags = append(diags, checkNoinlineFault(importPath, files)...)
	diags = append(diags, checkMemEncapsulation(importPath, files)...)
	diags = append(diags, checkFastpath(files)...)
	diags = append(diags, checkAtomicConsistency(files)...)
	diags = append(diags, checkNoBareContext(importPath, files)...)
	diags = append(diags, checkElisionEncapsulation(importPath, files)...)
	diags = append(diags, checkUnguardedGate(importPath, files)...)
	diags = append(diags, checkTagTableEncapsulation(fset, importPath, files)...)
	diags = append(diags, checkRedteamEncapsulation(importPath, files)...)
	diags = append(diags, checkTemporalEncapsulation(importPath, files)...)
	diags = append(diags, checkShardEncapsulation(importPath, files)...)
	return diags
}

// hasDirective reports whether the declaration's doc block contains the
// given comment directive (an exact //-comment line, no leading space).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Pass 1: noinline-fault.
//
// internal/mem outlines all fault construction into //go:noinline helpers so
// the fault-free access path performs zero allocations (the property
// TestCheckedAccessAllocs pins). A new *mte.Fault composite literal in a
// function the compiler may inline would silently drag the Backtrace
// allocation back onto the hot path; this pass makes that a lint failure
// instead of a perf regression.

// faultConstructorPkg is the only package the noinline rule applies to.
const faultConstructorPkg = modulePath + "/internal/mem"

func checkNoinlineFault(importPath string, files []*ast.File) []diagnostic {
	if importPath != faultConstructorPkg {
		return nil
	}
	var diags []diagnostic
	for _, f := range files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || hasDirective(fn.Doc, "//go:noinline") {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				cl, ok := n.(*ast.CompositeLit)
				if !ok || !isSelector(cl.Type, "mte", "Fault") {
					return true
				}
				diags = append(diags, diagnostic{
					pos: fn.Pos(),
					msg: fmt.Sprintf("%s constructs mte.Fault but is not marked //go:noinline: fault construction must stay outlined so the fault-free access path does not allocate", fn.Name.Name),
				})
				return false
			})
		}
	}
	return diags
}

// isSelector reports whether e is the selector expression pkg.name.
func isSelector(e ast.Expr, pkg, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg
}

// ---------------------------------------------------------------------------
// Pass 2: mem-encapsulation.
//
// Space's raw internals — direct tag-storage writes, unchecked byte
// windows, scan-lock plumbing — are implementation surface for the
// memory-management tier, not API for the serving and analysis layers
// above it. Only the tier that simulates the machine may call them;
// everything else must go through checked accesses (Load*/Store*/Copy*)
// or the heap/VM abstractions.

// spaceInternals are the Space/Mapping methods the upper layers must not
// call. Bytes is handled separately (see memBytesSuspicious): the name
// collides with bytes.Buffer.Bytes and friends, so it is only flagged when
// the receiver is syntactically tied to a mem mapping.
var spaceInternals = map[string]bool{
	"SetTagRange":    true,
	"ZeroTagRange":   true,
	"ReadRaw":        true,
	"WriteRaw":       true,
	"EnableScanSync": true,
	"LockScan":       true,
	"UnlockScan":     true,
}

// memTier are the packages allowed to touch Space internals: the machine
// simulation itself plus the differential fuzzer and the root package's
// figure/bench drivers, which deliberately poke raw state to stage
// scenarios.
var memTier = map[string]bool{
	modulePath:                           true,
	modulePath + "/internal/mem":         true,
	modulePath + "/internal/heap":        true,
	modulePath + "/internal/vm":          true,
	modulePath + "/internal/core":        true,
	modulePath + "/internal/jni":         true,
	modulePath + "/internal/guardedcopy": true,
	modulePath + "/internal/fuzz":        true,
}

func checkMemEncapsulation(importPath string, files []*ast.File) []diagnostic {
	if memTier[importPath] {
		return nil
	}
	var diags []diagnostic
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch {
			case spaceInternals[name]:
			case name == "Bytes" && memBytesSuspicious(sel.X):
			default:
				return true
			}
			diags = append(diags, diagnostic{
				pos: call.Pos(),
				msg: fmt.Sprintf("call to %s reaches into mem.Space internals from %s: raw tag storage and scan locks are only for the memory-management tier (internal/{mem,heap,vm,core,jni,guardedcopy,fuzz}); use checked accesses or the heap/VM API", name, importPath),
			})
			return true
		})
	}
	return diags
}

// memBytesSuspicious reports whether the receiver of a .Bytes() call is
// syntactically a mem mapping — i.e. the expression itself goes through a
// Mapping() accessor (vm.JavaHeap.Mapping().Bytes(...)). Plain identifiers
// (bytes.Buffer and friends) are left alone: without type information the
// name alone proves nothing, and a denied package holding a *mem.Mapping in
// a local would already have been flagged at whatever internals call
// produced it.
func memBytesSuspicious(recv ast.Expr) bool {
	found := false
	ast.Inspect(recv, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Mapping" {
			found = true
			return false
		}
		return true
	})
	return found
}

// ---------------------------------------------------------------------------
// Pass 3: fastpath.
//
// Functions annotated //mte4jni:fastpath are the per-access engine: they run
// once per simulated load/store and are covered by zero-allocation tests.
// The pass rejects constructs that allocate or take timestamps — the two
// regressions that creep in silently and only show up later as a bench
// delta: make/new/append, &composite literals, closures, go/defer (defer
// also costs on the happy path), and time.Now/time.Since/fmt calls.

// fastpathDirective marks a function as per-access hot path.
const fastpathDirective = "//mte4jni:fastpath"

func checkFastpath(files []*ast.File) []diagnostic {
	var diags []diagnostic
	for _, f := range files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn.Doc, fastpathDirective) {
				continue
			}
			diags = append(diags, checkFastpathBody(fn)...)
		}
	}
	return diags
}

func checkFastpathBody(fn *ast.FuncDecl) []diagnostic {
	var diags []diagnostic
	bad := func(pos token.Pos, what string) {
		diags = append(diags, diagnostic{
			pos: pos,
			msg: fmt.Sprintf("fastpath function %s %s: %s functions run once per simulated access and must not allocate or take timestamps", fn.Name.Name, what, fastpathDirective),
		})
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "make" || fun.Name == "new" || fun.Name == "append" {
					bad(n.Pos(), fmt.Sprintf("allocates via %s", fun.Name))
				}
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok {
					switch {
					case id.Name == "time" && (fun.Sel.Name == "Now" || fun.Sel.Name == "Since"):
						bad(n.Pos(), "calls time."+fun.Sel.Name)
					case id.Name == "fmt":
						bad(n.Pos(), "calls fmt."+fun.Sel.Name)
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					bad(n.Pos(), "heap-allocates a &composite literal")
				}
			}
		case *ast.FuncLit:
			bad(n.Pos(), "creates a closure")
			return false
		case *ast.GoStmt:
			bad(n.Pos(), "starts a goroutine")
		case *ast.DeferStmt:
			bad(n.Pos(), "defers a call")
		}
		return true
	})
	return diags
}

// ---------------------------------------------------------------------------
// Pass 4: atomic-consistency.
//
// A field read or written through sync/atomic anywhere in a package must be
// accessed that way everywhere in the package: one plain `s.f = v` next to
// an atomic.LoadUint64(&s.f) is a data race the race detector only catches
// if a test happens to interleave the two. The pass collects every field
// name that appears as &x.f in an atomic call, then flags plain assignments
// and ++/-- on selectors with those names.
//
// Matching is by field name only (no type information), which is exactly as
// strong as the repo's naming discipline — a false positive is resolved by
// renaming one of the fields, which the race-prone code needed anyway for a
// human reader.

// ---------------------------------------------------------------------------
// Pass 5: no-bare-context.
//
// The execution-context spine (DESIGN.md "Execution-context spine") only
// works if cancellation and deadlines flow unbroken from the HTTP edge to
// the interpreter loop. A context.Background() (or TODO()) in library code
// severs that flow: whatever runs under it can no longer be canceled by the
// request that asked for it. Fresh root contexts are therefore only allowed
// where roots genuinely exist — command entrypoints (cmd/...), main
// functions, and tests (the driver never parses _test.go files).

func checkNoBareContext(importPath string, files []*ast.File) []diagnostic {
	if strings.HasPrefix(importPath, modulePath+"/cmd/") {
		return nil
	}
	var diags []diagnostic
	check := func(body ast.Node) {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 0 {
				return true
			}
			if !isSelector(call.Fun, "context", "Background") && !isSelector(call.Fun, "context", "TODO") {
				return true
			}
			sel := call.Fun.(*ast.SelectorExpr)
			diags = append(diags, diagnostic{
				pos: call.Pos(),
				msg: fmt.Sprintf("context.%s() severs the execution-context spine: thread the caller's context through instead (bare root contexts belong only in cmd/ entrypoints, main functions, and tests)", sel.Sel.Name),
			})
			return true
		})
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				if fn.Name.Name == "main" || fn.Body == nil {
					continue
				}
				check(fn.Body)
				continue
			}
			// Package-level var initializers can sever the spine too.
			check(decl)
		}
	}
	return diags
}

// ---------------------------------------------------------------------------
// Pass 6: elision-encapsulation.
//
// An interp.ElisionMask is a soundness claim — "skipping the tag check at
// these PCs cannot change behaviour" — and the only thing entitled to make
// that claim is the proof compiler in internal/analysis, which derives it
// from discharged screening verdicts. A mask minted anywhere else (a
// convenient NewElisionMask in a bench, a composite literal in a handler)
// is an unproven elision: this pass makes it a lint failure. interp itself
// is allowed, since it defines the type and its own tests exercise it.

// elisionCompilerTier are the packages allowed to construct elision masks.
var elisionCompilerTier = map[string]bool{
	modulePath + "/internal/analysis": true,
	modulePath + "/internal/interp":   true,
}

func checkElisionEncapsulation(importPath string, files []*ast.File) []diagnostic {
	if elisionCompilerTier[importPath] {
		return nil
	}
	var diags []diagnostic
	flag := func(pos token.Pos, what string) {
		diags = append(diags, diagnostic{
			pos: pos,
			msg: fmt.Sprintf("%s constructs an elision mask outside the proof compiler: a mask is a soundness claim only internal/analysis may mint from discharged screening proofs; thread a compiled analysis.Elision through instead", what),
		})
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "NewElisionMask" {
					flag(n.Pos(), "call to NewElisionMask")
				} else if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "NewElisionMask" {
					flag(n.Pos(), "call to NewElisionMask")
				}
			case *ast.CompositeLit:
				switch t := n.Type.(type) {
				case *ast.SelectorExpr:
					if t.Sel.Name == "ElisionMask" {
						flag(n.Pos(), "ElisionMask composite literal")
					}
				case *ast.Ident:
					if t.Name == "ElisionMask" {
						flag(n.Pos(), "ElisionMask composite literal")
					}
				}
			}
			return true
		})
	}
	return diags
}

// ---------------------------------------------------------------------------
// Pass 7: unguarded-gate.
//
// The *Unguarded access variants (internal/mem) skip the SWAR tag compare.
// Two invariants keep them sound: only the elision tier — the root bench
// drivers, internal/mem itself, the jni env, and the fuzz oracle — may call
// them at all; and inside internal/jni every call must sit lexically inside
// an if whose condition consults the elided() gate, so an invalidated proof
// (release, remap, digest mismatch) falls back to checked access instead of
// silently staying guard-free. The gate detection is syntactic (an
// identifier named "elided" anywhere in the condition), exactly as strong
// as the env's naming discipline.

// unguardedTier are the packages allowed to call *Unguarded accessors.
var unguardedTier = map[string]bool{
	modulePath:                    true,
	modulePath + "/internal/mem":  true,
	modulePath + "/internal/jni":  true,
	modulePath + "/internal/fuzz": true,
}

func checkUnguardedGate(importPath string, files []*ast.File) []diagnostic {
	inTier := unguardedTier[importPath]
	gateRequired := importPath == modulePath+"/internal/jni"
	if inTier && !gateRequired {
		return nil
	}
	var diags []diagnostic
	for _, f := range files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// Collect the gated regions: bodies of ifs that consult elided().
			var gated [][2]token.Pos
			if gateRequired {
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					if ifs, ok := n.(*ast.IfStmt); ok && condMentionsElided(ifs.Cond) {
						gated = append(gated, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
					}
					return true
				})
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !strings.HasSuffix(sel.Sel.Name, "Unguarded") {
					return true
				}
				if !inTier {
					diags = append(diags, diagnostic{
						pos: call.Pos(),
						msg: fmt.Sprintf("call to %s takes the unguarded access path from %s: guard-free variants belong to the elision tier (root bench drivers, internal/{mem,jni,fuzz}); use the checked accessors", sel.Sel.Name, importPath),
					})
					return true
				}
				for _, r := range gated {
					if call.Pos() >= r[0] && call.End() <= r[1] {
						return true
					}
				}
				diags = append(diags, diagnostic{
					pos: call.Pos(),
					msg: fmt.Sprintf("call to %s in %s is not behind the elision gate: unguarded access must sit inside an if whose condition consults elided(), so invalidated proofs fall back to checked access", sel.Sel.Name, fn.Name.Name),
				})
				return true
			})
		}
	}
	return diags
}

// condMentionsElided reports whether the condition consults the env's
// elision gate — any identifier named "elided" (e.elided(), elided, ...).
func condMentionsElided(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "elided" {
			found = true
			return false
		}
		return true
	})
	return found
}

func checkAtomicConsistency(files []*ast.File) []diagnostic {
	atomicFields := map[string]token.Pos{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !strings.HasPrefix(sel.Sel.Name, "Load") &&
				!strings.HasPrefix(sel.Sel.Name, "Store") &&
				!strings.HasPrefix(sel.Sel.Name, "Add") &&
				!strings.HasPrefix(sel.Sel.Name, "Swap") &&
				!strings.HasPrefix(sel.Sel.Name, "CompareAndSwap") {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if fsel, ok := un.X.(*ast.SelectorExpr); ok {
					if _, seen := atomicFields[fsel.Sel.Name]; !seen {
						atomicFields[fsel.Sel.Name] = fsel.Pos()
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	var diags []diagnostic
	flag := func(sel *ast.SelectorExpr, how string) {
		if _, ok := atomicFields[sel.Sel.Name]; !ok {
			return
		}
		diags = append(diags, diagnostic{
			pos: sel.Pos(),
			msg: fmt.Sprintf("field %s is accessed with sync/atomic elsewhere in this package but %s here: mixed plain/atomic access is a data race", sel.Sel.Name, how),
		})
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok {
						flag(sel, "plainly assigned")
					}
				}
			case *ast.IncDecStmt:
				if sel, ok := n.X.(*ast.SelectorExpr); ok {
					flag(sel, "plainly incremented")
				}
			}
			return true
		})
	}
	return diags
}

// ---------------------------------------------------------------------------
// Pass 8: tagtable-encapsulation.
//
// The hierarchical tag store (internal/mem/tagtable.go) owns two pieces of
// raw storage: each mapping's directory of atomic page pointers
// (tagTable.dir) and the canonical uniform-page array (uniformPages). Every
// invariant the store guarantees — pages fully filled before CAS
// publication, canonical pages never written, freelist recycling, residency
// accounting — lives behind its methods plus the page()/canonical()
// accessors. Code that indexes the directory or the canonical array
// directly could observe a half-initialized page or skew the counters, so
// this pass pins the boundary: inside internal/mem only tagtable.go may
// name tagTable.dir or uniformPages. Outside the package both are
// unexported and unreachable; indexing a `.dir` selector there is still
// flagged as defense in depth against the storage being re-exposed through
// a wrapper. Syntax-only caveat: any field named `dir` trips the rule, so
// the name is effectively reserved for the tag directory in this module.

// tagTableFile is the one file allowed to touch raw tag-page storage.
const tagTableFile = "tagtable.go"

func checkTagTableEncapsulation(fset *token.FileSet, importPath string, files []*ast.File) []diagnostic {
	inMem := importPath == faultConstructorPkg
	var diags []diagnostic
	for _, f := range files {
		if inMem && filepath.Base(fset.Position(f.Pos()).Filename) == tagTableFile {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if inMem && n.Sel.Name == "dir" {
					diags = append(diags, diagnostic{
						pos: n.Sel.Pos(),
						msg: "selector .dir reaches into the tag-page directory outside tagtable.go: raw tag storage must go through tagTable methods (page/setRange/release) so page-publication and residency invariants hold",
					})
				}
			case *ast.IndexExpr:
				if sel, ok := n.X.(*ast.SelectorExpr); ok && !inMem && sel.Sel.Name == "dir" {
					diags = append(diags, diagnostic{
						pos: n.Pos(),
						msg: "indexing a .dir field outside internal/mem looks like direct tag-page directory access: the two-level tag table is private to internal/mem and must stay behind Space accessors",
					})
				}
			case *ast.Ident:
				if inMem && n.Name == "uniformPages" {
					diags = append(diags, diagnostic{
						pos: n.Pos(),
						msg: "uniformPages referenced outside tagtable.go: canonical tag pages are shared immutable storage and may only be reached via canonical()/isCanonical()",
					})
				}
			}
			return true
		})
	}
	return diags
}

// ---------------------------------------------------------------------------
// Pass 9: redteam-encapsulation.
//
// The attack corpus in internal/redteam is deliberately dangerous code: each
// New*Attack constructor builds an exploit (forged-tag stores, damage-window
// races, guarded-copy blind-spot abuse) meant to run only inside the harness,
// which pins the target, bounds the probe budget, and reduces the outcome to
// a detection verdict. An attack instantiated elsewhere — a bench spraying
// forged stores, a handler wiring an exploit into the serving path — would be
// an unharnessed exploit with no verdict and no telemetry. This pass keeps
// every New*Attack call inside internal/redteam; everything else consumes
// attacks through redteam.Corpus(), redteam.Run(), or the serving-tier
// ServingProbe, which carry their own harnessing.

func checkRedteamEncapsulation(importPath string, files []*ast.File) []diagnostic {
	if importPath == modulePath+"/internal/redteam" {
		return nil
	}
	isAttackCtor := func(name string) bool {
		return strings.HasPrefix(name, "New") && strings.HasSuffix(name, "Attack") && len(name) > len("NewAttack")
	}
	var diags []diagnostic
	flag := func(pos token.Pos, name string) {
		diags = append(diags, diagnostic{
			pos: pos,
			msg: fmt.Sprintf("call to %s outside internal/redteam: attack constructors build unharnessed exploits; drive the corpus through redteam.Run/redteam.Corpus (or redteam.ServingProbe in the serving tier) so every probe lands in a harness with a detection verdict", name),
		})
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				if isAttackCtor(fun.Sel.Name) {
					flag(call.Pos(), fun.Sel.Name)
				}
			case *ast.Ident:
				if isAttackCtor(fun.Name) {
					flag(call.Pos(), fun.Name)
				}
			}
			return true
		})
	}
	return diags
}

// ---------------------------------------------------------------------------
// Pass 10: temporal-encapsulation.
//
// A TemporalFinding is an admission verdict — "this call site's critical
// window is exposed under that checker's placement" — and a WindowEvent is a
// step in the happens-before trace that justifies it. Both are only
// meaningful when derived by the temporal effect domain in internal/analysis
// from a native summary; one minted anywhere else (a handler fabricating a
// finding to force a 422, a test conjuring events that never happened) is an
// unproven claim dressed up as analysis output. Same discipline as the
// elision-mask pass: only the analyzer may construct them, everything else
// receives them through a ScreenVerdict.

// temporalCtors are the constructors reserved for the temporal effect domain.
var temporalCtors = map[string]bool{
	"NewTemporalFinding": true,
	"NewWindowEvent":     true,
}

func checkTemporalEncapsulation(importPath string, files []*ast.File) []diagnostic {
	if importPath == modulePath+"/internal/analysis" {
		return nil
	}
	var diags []diagnostic
	flag := func(pos token.Pos, name string) {
		diags = append(diags, diagnostic{
			pos: pos,
			msg: fmt.Sprintf("call to %s outside internal/analysis: temporal findings and window events are verdicts only the temporal effect domain may derive; consume them through the ScreenVerdict instead of constructing them", name),
		})
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				if temporalCtors[fun.Sel.Name] {
					flag(call.Pos(), fun.Sel.Name)
				}
			case *ast.Ident:
				if temporalCtors[fun.Name] {
					flag(call.Pos(), fun.Name)
				}
			}
			return true
		})
	}
	return diags
}

// ---------------------------------------------------------------------------
// Pass 11: shard-encapsulation.
//
// An admission shard's internals — its slice of the token semaphore
// (freeTokens), its parked-Acquire FIFO (waitq) and its per-scheme warm
// free lists (warmIdle) — are guarded by the shard mutex and tied together
// by the lease-ledger invariant (sum of shard leases == pool created +
// reused, exactly). The waiter-grant protocol depends on "absent from
// waitq implies granted or abandoned" holding under that one lock; a
// handler or bench reaching for these fields directly could drop a token,
// double-grant a waiter, or resurrect a retired session past the drain
// assertion. This pass reserves the three names for internal/pool: any
// selector expression naming them in another package is flagged, even
// through a wrapper that re-exposes the shard struct.

// shardInternalFields are the shard fields reserved for internal/pool.
var shardInternalFields = map[string]bool{
	"freeTokens": true,
	"waitq":      true,
	"warmIdle":   true,
}

func checkShardEncapsulation(importPath string, files []*ast.File) []diagnostic {
	if importPath == modulePath+"/internal/pool" {
		return nil
	}
	var diags []diagnostic
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !shardInternalFields[sel.Sel.Name] {
				return true
			}
			diags = append(diags, diagnostic{
				pos: sel.Sel.Pos(),
				msg: fmt.Sprintf("selector .%s reaches into admission-shard internals outside internal/pool: the token semaphore, waiter queue and warm free lists are guarded by the shard mutex and must be driven through Pool methods (AcquireFor/Release/Close) so the lease ledger stays exact", sel.Sel.Name),
			})
			return true
		})
	}
	return diags
}
