package main

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintFixture runs the passes over one testdata file under the given
// import path and returns the rendered diagnostics.
func lintFixture(t *testing.T, importPath, fixture string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("testdata", fixture), nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, d := range runPasses(fset, importPath, []*ast.File{f}) {
		out = append(out, fset.Position(d.pos).String()+": "+d.msg)
	}
	return out
}

// wantDiags asserts the diagnostic list has exactly len(wants) entries and
// that wants[i] is a substring of got[i].
func wantDiags(t *testing.T, got []string, wants ...string) {
	t.Helper()
	if len(got) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(got), len(wants), strings.Join(got, "\n"))
	}
	for i, w := range wants {
		if !strings.Contains(got[i], w) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, got[i], w)
		}
	}
}

func TestNoinlineFaultPass(t *testing.T) {
	got := lintFixture(t, "mte4jni/internal/mem", "noinline_bad.go")
	wantDiags(t, got, "badFault constructs mte.Fault but is not marked //go:noinline")
	if !strings.Contains(got[0], "noinline_bad.go:10:") {
		t.Errorf("diagnostic not anchored at the offending function: %q", got[0])
	}
}

// The noinline rule is scoped to internal/mem: the same source elsewhere
// (e.g. a test helper package) is free to build faults inline.
func TestNoinlineFaultPassScopedToMem(t *testing.T) {
	wantDiags(t, lintFixture(t, "mte4jni/internal/report", "noinline_bad.go"))
}

func TestMemEncapsulationPass(t *testing.T) {
	got := lintFixture(t, "mte4jni/internal/server", "encap_bad.go")
	wantDiags(t, got,
		"call to SetTagRange reaches into mem.Space internals",
		"call to Bytes reaches into mem.Space internals",
		"call to WriteRaw reaches into mem.Space internals",
	)
}

// The memory-management tier itself may touch Space internals freely.
func TestMemEncapsulationAllowsMemTier(t *testing.T) {
	for _, pkg := range []string{
		"mte4jni", "mte4jni/internal/mem", "mte4jni/internal/vm",
		"mte4jni/internal/core", "mte4jni/internal/guardedcopy", "mte4jni/internal/fuzz",
	} {
		wantDiags(t, lintFixture(t, pkg, "encap_bad.go"))
	}
}

func TestFastpathPass(t *testing.T) {
	got := lintFixture(t, "mte4jni/internal/mem", "fastpath_bad.go")
	// slowLookup violates five ways; fastLookup and unannotated are clean.
	wantDiags(t, got,
		"slowLookup calls time.Now",
		"slowLookup allocates via make",
		"slowLookup defers a call",
		"slowLookup calls fmt.Println",
		"slowLookup heap-allocates a &composite literal",
	)
}

func TestAtomicConsistencyPass(t *testing.T) {
	got := lintFixture(t, "mte4jni/internal/pool", "atomic_bad.go")
	wantDiags(t, got,
		"field n is accessed with sync/atomic elsewhere in this package but plainly assigned",
		"field n is accessed with sync/atomic elsewhere in this package but plainly incremented",
	)
}

func TestNoBareContextPass(t *testing.T) {
	got := lintFixture(t, "mte4jni/internal/server", "noctx_bad.go")
	wantDiags(t, got,
		"context.Background() severs the execution-context spine",
		"context.TODO() severs the execution-context spine",
	)
	if !strings.Contains(got[0], "noctx_bad.go:10:") {
		t.Errorf("diagnostic not anchored at the offending call: %q", got[0])
	}
}

// Command entrypoints are process roots: the same source under cmd/ is
// allowed to create root contexts.
func TestNoBareContextAllowsCmd(t *testing.T) {
	wantDiags(t, lintFixture(t, "mte4jni/cmd/mte4jni", "noctx_bad.go"))
}

func TestElisionEncapsulationPass(t *testing.T) {
	got := lintFixture(t, "mte4jni/internal/server", "elision_bad.go")
	wantDiags(t, got,
		"call to NewElisionMask constructs an elision mask outside the proof compiler",
		"ElisionMask composite literal constructs an elision mask outside the proof compiler",
		"ElisionMask composite literal constructs an elision mask outside the proof compiler",
	)
}

// Only the proof compiler (and interp, which defines the type) may mint
// masks; the same source there is clean.
func TestElisionEncapsulationAllowsCompilerTier(t *testing.T) {
	for _, pkg := range []string{"mte4jni/internal/analysis", "mte4jni/internal/interp"} {
		wantDiags(t, lintFixture(t, pkg, "elision_bad.go"))
	}
}

func TestUnguardedGatePass(t *testing.T) {
	// Outside the elision tier every *Unguarded call is flagged, gated or not.
	got := lintFixture(t, "mte4jni/internal/server", "unguarded_bad.go")
	wantDiags(t, got,
		"call to Load32Unguarded takes the unguarded access path from mte4jni/internal/server",
		"call to Load32Unguarded takes the unguarded access path from mte4jni/internal/server",
	)
	// In internal/jni the gated call is sanctioned; the ungated one is not.
	got = lintFixture(t, "mte4jni/internal/jni", "unguarded_bad.go")
	wantDiags(t, got,
		"call to Load32Unguarded in ungatedLoad is not behind the elision gate",
	)
}

// The rest of the elision tier (mem itself, the fuzz oracle, root bench
// drivers) may call unguarded variants without the jni gate shape.
func TestUnguardedGateAllowsElisionTier(t *testing.T) {
	for _, pkg := range []string{"mte4jni", "mte4jni/internal/mem", "mte4jni/internal/fuzz"} {
		wantDiags(t, lintFixture(t, pkg, "unguarded_bad.go"))
	}
}

func TestTagTableEncapsulationPass(t *testing.T) {
	// Under internal/mem (a hypothetical sibling of tagtable.go) both the
	// raw directory selector and the canonical-array reference are flagged;
	// the accessor-based goodRead shape is not.
	got := lintFixture(t, "mte4jni/internal/mem", "tagtable_bad.go")
	wantDiags(t, got,
		"selector .dir reaches into the tag-page directory outside tagtable.go",
		"uniformPages referenced outside tagtable.go",
	)
	// Outside the package only the indexed directory access is flagged, as
	// defense in depth against the storage being re-exposed.
	got = lintFixture(t, "mte4jni/internal/server", "tagtable_bad.go")
	wantDiags(t, got,
		"indexing a .dir field outside internal/mem looks like direct tag-page directory access",
	)
}

// tagtable.go itself is exempt by filename: the identical source parsed
// as tagtable.go under internal/mem is clean, since that file is where the
// raw storage legitimately lives.
func TestTagTableEncapsulationExemptsTagTableFile(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "tagtable_bad.go"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tagtable.go")
	if err := os.WriteFile(path, src, 0o666); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	if diags := runPasses(fset, "mte4jni/internal/mem", []*ast.File{f}); len(diags) != 0 {
		t.Fatalf("got %d diagnostics for tagtable.go itself, want 0", len(diags))
	}
}

func TestRedteamEncapsulationPass(t *testing.T) {
	got := lintFixture(t, "mte4jni/internal/server", "redteam_bad.go")
	wantDiags(t, got,
		"call to NewBruteForceAttack outside internal/redteam",
		"call to NewAsyncWindowAttack outside internal/redteam",
		"call to NewGCRaceAttack outside internal/redteam",
	)
}

// internal/redteam itself — the corpus, the harness, and their tests — may
// construct attacks freely.
func TestRedteamEncapsulationAllowsRedteam(t *testing.T) {
	wantDiags(t, lintFixture(t, "mte4jni/internal/redteam", "redteam_bad.go"))
}

func TestTemporalEncapsulationPass(t *testing.T) {
	got := lintFixture(t, "mte4jni/internal/server", "temporal_bad.go")
	wantDiags(t, got,
		"call to NewTemporalFinding outside internal/analysis",
		"call to NewWindowEvent outside internal/analysis",
		"call to NewWindowEvent outside internal/analysis",
	)
}

// The temporal effect domain itself may mint findings and events freely.
func TestTemporalEncapsulationAllowsAnalysis(t *testing.T) {
	wantDiags(t, lintFixture(t, "mte4jni/internal/analysis", "temporal_bad.go"))
}

// TestLintConfigDriver exercises the vet-tool protocol driver end to end on
// a written vet.cfg: diagnostics rendered as file:line:col, the facts file
// recorded, and exit-worthy count returned.
func TestLintConfigDriver(t *testing.T) {
	dir := t.TempDir()
	src, err := os.ReadFile(filepath.Join("testdata", "noinline_bad.go"))
	if err != nil {
		t.Fatal(err)
	}
	goFile := filepath.Join(dir, "noinline_bad.go")
	if err := os.WriteFile(goFile, src, 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "pkg.vetx")
	cfg, _ := json.Marshal(vetConfig{
		ImportPath: "mte4jni/internal/mem",
		GoFiles:    []string{goFile},
		VetxOutput: vetx,
	})
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, cfg, 0o666); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	n, err := lintConfig(cfgPath, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("lintConfig reported %d diagnostics, want 1:\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "noinline_bad.go:10:1: badFault constructs mte.Fault") {
		t.Errorf("diagnostic not in file:line:col form:\n%s", buf.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts file not recorded: %v", err)
	}
}

// Facts-only, standard-library, and out-of-module invocations must succeed
// silently (cmd/go runs the tool over every dependency) while still
// recording the facts file.
func TestLintConfigSkipsNonModulePackages(t *testing.T) {
	dir := t.TempDir()
	for i, cfg := range []vetConfig{
		{ImportPath: "mte4jni/internal/mem", VetxOnly: true, GoFiles: []string{"does-not-exist.go"}},
		{ImportPath: "fmt", Standard: map[string]bool{"fmt": true}, GoFiles: []string{"does-not-exist.go"}},
		{ImportPath: "example.com/other", GoFiles: []string{"does-not-exist.go"}},
	} {
		cfg.VetxOutput = filepath.Join(dir, "out.vetx")
		raw, _ := json.Marshal(cfg)
		cfgPath := filepath.Join(dir, "vet.cfg")
		if err := os.WriteFile(cfgPath, raw, 0o666); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		n, err := lintConfig(cfgPath, &buf)
		if err != nil || n != 0 || buf.Len() != 0 {
			t.Errorf("case %d: n=%d err=%v out=%q, want silent success", i, n, err, buf.String())
		}
		if _, err := os.Stat(cfg.VetxOutput); err != nil {
			t.Errorf("case %d: facts file not recorded: %v", i, err)
		}
	}
}

// In-package test variants arrive as "pkg [pkg.test]" with _test.go files
// in GoFiles; the driver must analyze the non-test files under the plain
// import path and skip the test files entirely.
func TestLintConfigTestVariant(t *testing.T) {
	dir := t.TempDir()
	testFile := filepath.Join(dir, "x_test.go")
	// Deliberately invalid Go: proves _test.go files are never parsed.
	if err := os.WriteFile(testFile, []byte("not go code"), 0o666); err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(vetConfig{
		ImportPath: "mte4jni/internal/mem [mte4jni/internal/mem.test]",
		GoFiles:    []string{testFile},
	})
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, raw, 0o666); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if n, err := lintConfig(cfgPath, &buf); err != nil || n != 0 {
		t.Fatalf("test variant: n=%d err=%v out=%q", n, err, buf.String())
	}
}

func TestShardEncapsulationPass(t *testing.T) {
	// Outside internal/pool every shard-internal selector is flagged; the
	// method-based goodAcquire shape is not.
	got := lintFixture(t, "mte4jni/internal/server", "shard_bad.go")
	wantDiags(t, got,
		"selector .freeTokens reaches into admission-shard internals",
		"selector .waitq reaches into admission-shard internals",
		"selector .warmIdle reaches into admission-shard internals",
	)
	// internal/pool is where the shard mutex discipline lives: the same
	// source is clean there.
	wantDiags(t, lintFixture(t, "mte4jni/internal/pool", "shard_bad.go"))
}
