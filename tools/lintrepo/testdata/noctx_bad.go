// Fixture for the no-bare-context pass, analyzed as a library package
// (e.g. mte4jni/internal/server): the context.Background() and
// context.TODO() calls in ordinary functions must be flagged; deriving
// from a threaded context, a main function, and cmd/ packages must not.
package server

import "context"

func runDetached() {
	ctx := context.Background() // flagged: severs the spine
	_ = ctx
}

var pkgCtx = context.TODO() // flagged: package-level root context

func runThreaded(ctx context.Context) {
	derived, cancel := context.WithCancel(ctx) // fine: derived from the caller
	defer cancel()
	_ = derived
}

func main() {
	_ = context.Background() // fine: main functions are process roots
}
