// Fixture for the shard-encapsulation pass. Linted under any package other
// than internal/pool, every selector naming a shard-internal field —
// freeTokens, waitq, warmIdle — is flagged; under internal/pool itself the
// same source is clean, since the pool package is where the shard mutex
// discipline and the lease-ledger invariant are maintained. The sanctioned
// shape — driving admission through Pool methods — is never flagged.
// Parsed, never compiled, so the pool types need no definitions here.
package fixture

type fixtureShard struct {
	freeTokens int
	waitq      []int
	warmIdle   map[int][]int
}

// goodAcquire is the sanctioned shape: admission goes through the pool's
// own methods, which take the shard lock and keep the ledger exact.
func goodAcquire(p interface{ AcquireFor(int) int }) int {
	return p.AcquireFor(0)
}

// badToken hands itself a token without the shard lock or the ledger:
// flagged everywhere outside internal/pool.
func badToken(sh *fixtureShard) {
	sh.freeTokens--
}

// badSteal pops a parked waiter directly, bypassing the grant protocol
// that makes "absent from waitq" mean "granted or abandoned".
func badSteal(sh *fixtureShard) int {
	return sh.waitq[0]
}

// badWarm lifts a session off the warm free list without marking it
// leased, so the drain assertion would later find the ledger short.
func badWarm(sh *fixtureShard) []int {
	return sh.warmIdle[0]
}
