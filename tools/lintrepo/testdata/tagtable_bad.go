// Fixture for the tagtable-encapsulation pass. Linted twice: under
// internal/mem (as if this were a sibling of tagtable.go) both the .dir
// selector and the uniformPages reference are flagged; under any other
// import path only the indexed .dir access is, as defense in depth. The
// good shape — resolving pages through the accessor and comparing against
// canonical() — is never flagged. Parsed, never compiled, so the accessor
// and canonical helper (which live in tagtable.go) need no definitions here.
package fixture

type fixtureTagPage [256]uint8

// The field declaration itself is fine — only expressions that read or
// index the directory are storage access.
type fixtureTagTable struct {
	dir []*fixtureTagPage
}

// goodRead is the sanctioned shape: resolve the page through the accessor
// and compare against a canonical pointer.
func goodRead(t *fixtureTagTable, gi int) uint8 {
	pg := t.page(gi >> 8)
	if pg == canonical(0) {
		return 0
	}
	return pg[gi&255]
}

// badRead indexes the directory directly: flagged under internal/mem
// (selector .dir) and elsewhere (indexed .dir).
func badRead(t *fixtureTagTable, gi int) uint8 {
	return t.dir[gi>>8][gi&255]
}

// badUniform writes through the canonical array: flagged under
// internal/mem only (the ident is unexported and unreachable elsewhere).
func badUniform() {
	uniformPages[3][0] = 7
}
