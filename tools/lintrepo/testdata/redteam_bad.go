// Fixture for the redteam-encapsulation pass: instantiating attack-corpus
// exploits outside internal/redteam. Parsed, never compiled.
package fixture

import "mte4jni/internal/redteam"

func forgeExploits() []redteam.Attack {
	return []redteam.Attack{
		redteam.NewBruteForceAttack(true, false), // flagged: unharnessed exploit
		redteam.NewAsyncWindowAttack(8),          // flagged: unharnessed exploit
		NewGCRaceAttack(),                        // flagged: bare-identifier call
	}
}

// NewGCRaceAttack shadows the corpus constructor locally; the pass is
// syntactic and flags the call above regardless — the name is the contract.
func NewGCRaceAttack() redteam.Attack { return nil }

// Consuming the corpus through its sanctioned entry points is the allowed
// shape; nothing here calls a constructor, so nothing is flagged.
func runSanctioned() (any, error) {
	_ = redteam.Corpus
	return redteam.Run(redteam.Config{Trials: 1})
}
