// Fixture for the mem-encapsulation pass, analyzed as
// mte4jni/internal/server (a denied package): the SetTagRange and
// Mapping().Bytes calls must be flagged; the bytes.Buffer.Bytes call and
// the checked Load32 must not.
package server

import "bytes"

func poke(space spaceLike, v vmLike) {
	space.SetTagRange(0, 16, 3)           // flagged: raw tag storage
	v.JavaHeap.Mapping().Bytes(0, 16)     // flagged: unchecked byte window
	v.JavaHeap.Mapping().WriteRaw(0, nil) // flagged: unchecked write
	space.Load32(nil, 0)                  // fine: checked access API

	var buf bytes.Buffer
	buf.WriteByte(1)
	_ = buf.Bytes() // fine: not a mem mapping
}
