// Fixture for the temporal-encapsulation pass: fabricating temporal
// verdicts and window events outside the effect domain. Parsed, never
// compiled.
package fixture

import "mte4jni/internal/analysis"

func forgeVerdict() analysis.TemporalFinding {
	f := analysis.NewTemporalFinding("window-risk", 2, "damage", "fabricated") // flagged: unproven admission claim
	f.Events = append(f.Events,
		analysis.NewWindowEvent("write", 1, "never happened"), // flagged: fabricated happens-before event
		NewWindowEvent("check", 2, "shadowed"),                // flagged: bare-identifier call
	)
	return f
}

// NewWindowEvent shadows the analyzer's constructor locally; the pass is
// syntactic and flags the call above regardless — the name is the contract.
func NewWindowEvent(kind string, seq int, detail string) analysis.WindowEvent {
	return analysis.WindowEvent{}
}

// Consuming findings off a screening verdict is the sanctioned shape;
// nothing here constructs one, so nothing is flagged.
func readSanctioned(v *analysis.ScreenVerdict) int {
	return len(v.Temporal)
}
