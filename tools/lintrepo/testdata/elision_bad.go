// Fixture for the elision-encapsulation pass: minting an elision mask
// outside the proof compiler. Parsed, never compiled.
package fixture

import "mte4jni/internal/interp"

func forgeMask(n int) *interp.ElisionMask {
	m := interp.NewElisionMask(n, []int{0, 2}) // flagged: unproven claim
	_ = interp.ElisionMask{}                   // flagged: literal mask
	_ = &interp.ElisionMask{}                  // flagged: literal mask
	return m
}

// Compiled proofs threaded through are the sanctioned shape; nothing here
// constructs a mask, so nothing is flagged.
func useCompiled(el interface{ Mask() *interp.ElisionMask }) *interp.ElisionMask {
	return el.Mask()
}
