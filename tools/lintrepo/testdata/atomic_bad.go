// Fixture for the atomic-consistency pass: counter.n is loaded atomically
// in hits() but plainly assigned in reset() and incremented in bump() —
// both must be flagged. The untouched field m must not.
package pool

import "sync/atomic"

type counter struct {
	n uint64
	m uint64
}

func (c *counter) hits() uint64 {
	return atomic.LoadUint64(&c.n)
}

func (c *counter) reset() {
	c.n = 0 // flagged: plain store to an atomically-read field
	c.m = 0 // fine: m is never touched atomically
}

func (c *counter) bump() {
	c.n++ // flagged: plain read-modify-write
}
