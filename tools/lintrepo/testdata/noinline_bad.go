// Fixture for the noinline-fault pass, analyzed as mte4jni/internal/mem:
// badFault must be flagged (fault construction without //go:noinline),
// goodFault and unrelated must not.
package mem

import "mte4jni/internal/mte"

// badFault builds a fault inline — the compiler may inline it into the hot
// path, dragging the allocation along. The pass must flag it.
func badFault(kind mte.FaultKind) *mte.Fault {
	return &mte.Fault{Kind: kind}
}

// goodFault is the sanctioned shape: outlined by directive.
//
//go:noinline
func goodFault(kind mte.FaultKind) *mte.Fault {
	return &mte.Fault{Kind: kind}
}

// unrelated constructs no fault and needs no directive.
func unrelated() int {
	return 7
}
