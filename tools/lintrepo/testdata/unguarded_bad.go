// Fixture for the unguarded-gate pass. Linted twice: under an out-of-tier
// import path every *Unguarded call is flagged; under internal/jni only the
// ungated one is. Parsed, never compiled.
package fixture

type fixtureSpace struct{}

func (fixtureSpace) Load32(p uint64) uint32          { return 0 }
func (fixtureSpace) Load32Unguarded(p uint64) uint32 { return 0 }

type fixtureEnv struct{ space fixtureSpace }

func (e *fixtureEnv) elided() bool { return false }

// gatedLoad is the sanctioned shape: the unguarded call sits inside the
// elided() gate, so an invalidated proof falls back to the checked path.
func (e *fixtureEnv) gatedLoad(p uint64) uint32 {
	var v uint32
	if e.elided() {
		v = e.space.Load32Unguarded(p)
	} else {
		v = e.space.Load32(p)
	}
	return v
}

// ungatedLoad skips the gate: flagged under internal/jni.
func (e *fixtureEnv) ungatedLoad(p uint64) uint32 {
	return e.space.Load32Unguarded(p)
}
