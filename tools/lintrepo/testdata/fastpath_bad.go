// Fixture for the fastpath pass: slowLookup carries the annotation and
// violates it five ways; fastLookup carries it and is clean; unannotated
// may do anything.
package mem

import (
	"fmt"
	"time"
)

// slowLookup is annotated hot but allocates and takes timestamps.
//
//mte4jni:fastpath
func slowLookup(addr uint64) int {
	start := time.Now() // flagged
	buf := make([]byte, 8)
	defer fmt.Println(start) // flagged twice: defer + fmt call
	f := &record{addr: addr} // flagged
	_ = f
	return len(buf)
}

// fastLookup is annotated hot and stays in the zero-cost regime.
//
//mte4jni:fastpath
func fastLookup(addr uint64, tags []uint8) int {
	for i := range tags {
		if uint64(tags[i]) == addr&0xF {
			return i
		}
	}
	return -1
}

// unannotated is ordinary code: no constraints.
func unannotated() []byte {
	defer fmt.Println(time.Now())
	return make([]byte, 8)
}

type record struct{ addr uint64 }
